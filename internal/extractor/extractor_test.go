package extractor

import (
	"strings"
	"testing"

	"neurovec/internal/lang"
)

func TestLoopsFlatAndNested(t *testing.T) {
	p := lang.MustParse(`
int a[64];
float M[32][32];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) {
            M[i][j] = 0;
        }
    }
}
`)
	infos := Loops(p)
	if len(infos) != 2 {
		t.Fatalf("got %d innermost loops, want 2", len(infos))
	}
	// Flat loop: outermost == innermost.
	if infos[0].Outermost != infos[0].Innermost {
		t.Error("flat loop should be its own nest root")
	}
	// Nested loop: outermost is the i loop, innermost the j loop.
	if infos[1].Outermost == infos[1].Innermost {
		t.Error("nested loop lost its root")
	}
	if infos[1].Innermost.Label != "L2" {
		t.Errorf("innermost label = %s", infos[1].Innermost.Label)
	}
	if infos[1].Outermost.Label != "L1" {
		t.Errorf("outermost label = %s", infos[1].Outermost.Label)
	}
}

func TestLoopsInsideIf(t *testing.T) {
	p := lang.MustParse(`
int a[64];
void f(int flag) {
    if (flag > 0) {
        for (int i = 0; i < 64; i++) {
            a[i] = i;
        }
    }
}
`)
	infos := Loops(p)
	if len(infos) != 1 {
		t.Fatalf("loops in if branch not found: %d", len(infos))
	}
}

func TestSiblingInnermostLoops(t *testing.T) {
	p := lang.MustParse(`
int a[64];
int b[64];
void f() {
    for (int i = 0; i < 8; i++) {
        for (int j = 0; j < 8; j++) {
            a[j] = j;
        }
        for (int k = 0; k < 8; k++) {
            b[k] = k;
        }
    }
}
`)
	infos := Loops(p)
	if len(infos) != 2 {
		t.Fatalf("got %d innermost loops, want 2 siblings", len(infos))
	}
	for _, info := range infos {
		if info.Outermost.Label != "L0" {
			t.Errorf("sibling %s has root %s, want L0", info.Label, info.Outermost.Label)
		}
	}
}

func TestInjectPragmas(t *testing.T) {
	p := lang.MustParse(`
int a[128];
void f() {
    for (int i = 0; i < 128; i++) {
        a[i] = i;
    }
}
`)
	n := InjectPragmas(p, []Decision{{Label: "L0", VF: 16, IF: 4}})
	if n != 1 {
		t.Fatalf("injected %d pragmas, want 1", n)
	}
	out := lang.Print(p)
	if !strings.Contains(out, "#pragma clang loop vectorize_width(16) interleave_count(4)") {
		t.Fatalf("pragma missing from output:\n%s", out)
	}
	// The annotated source must parse back with the pragma attached.
	p2, err := lang.Parse(out)
	if err != nil {
		t.Fatalf("annotated source does not parse: %v", err)
	}
	pr := p2.Funcs[0].Loops()[0].Pragma
	if pr == nil || pr.VF != 16 || pr.IF != 4 {
		t.Fatalf("round-tripped pragma = %+v", pr)
	}
}

func TestInjectTargetsInnermostOnly(t *testing.T) {
	p := lang.MustParse(`
float M[64][64];
void f() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            M[i][j] = 1.0;
        }
    }
}
`)
	InjectPragmas(p, []Decision{{Label: "L1", VF: 8, IF: 2}})
	out := lang.Print(p)
	// The pragma must appear after the outer for header, i.e. attached to
	// the inner loop (the paper: "the pragma is injected to the most inner
	// loop in case of nested loops").
	outerIdx := strings.Index(out, "for (int i")
	pragmaIdx := strings.Index(out, "#pragma")
	if pragmaIdx < outerIdx {
		t.Fatalf("pragma attached to outer loop:\n%s", out)
	}
}

func TestInjectReplacesExistingPragma(t *testing.T) {
	p := lang.MustParse(`
int a[128];
void f() {
    #pragma clang loop vectorize_width(2) interleave_count(1)
    for (int i = 0; i < 128; i++) {
        a[i] = i;
    }
}
`)
	InjectPragmas(p, []Decision{{Label: "L0", VF: 32, IF: 8}})
	out := lang.Print(p)
	if strings.Contains(out, "vectorize_width(2)") {
		t.Fatal("old pragma survived")
	}
	if !strings.Contains(out, "vectorize_width(32)") {
		t.Fatal("new pragma missing")
	}
}

func TestAnnotateUnknownLabelIsNoop(t *testing.T) {
	p := lang.MustParse(`
int a[16];
void f() {
    for (int i = 0; i < 16; i++) {
        a[i] = i;
    }
}
`)
	out := Annotate(p, []Decision{{Label: "L99", VF: 8, IF: 2}})
	if strings.Contains(out, "#pragma") {
		t.Fatal("pragma injected for unknown label")
	}
}
