// Package features is the hand-engineered-features ablation: the approach
// of the prior work the paper positions itself against (Stock et al., TACO
// 2012), which represents loops by fixed heuristic features such as
// arithmetic intensity instead of a learned embedding.
//
// It implements the same Embedder interface as the code2vec model so the RL
// agent (and the ranker) can train on either representation; the feature
// extractor itself has no trainable parameters, so nothing flows back into
// it — exactly the limitation the paper calls out ("these features are
// typically not sufficient to fully capture the code functionality").
package features

import (
	"math"

	"neurovec/internal/ir"
	"neurovec/internal/nn"
)

// Dim is the feature-vector width.
const Dim = 24

// Vector computes the hand-crafted feature vector for an innermost loop.
//
// Features (all scaled to roughly [0, 1]):
//
//	0  log2 trip count / 16
//	1  trip count known at compile time
//	2  op count / 32
//	3..8 fraction of ops that are add/sub, mul, div/rem, cmp/select,
//	     convert, bitwise
//	9  load streams / 8
//	10 store streams / 8
//	11 fraction of unit-stride accesses
//	12 fraction of strided (non-unit affine) accesses
//	13 fraction of non-affine (gather/scatter) accesses
//	14 has reduction
//	15 reduction is floating point
//	16 has control flow (if) in body
//	17 has opaque call
//	18 widest element bits / 64
//	19 narrowest element bits / 64
//	20 arithmetic intensity: ops / (loads+stores+1), capped at 4, /4
//	21 nest depth / 4
//	22 fraction of accesses statically aligned
//	23 fraction of predicated instructions
func Vector(l *ir.Loop) []float64 {
	v := make([]float64, Dim)
	trip := float64(l.Trip)
	if trip < 1 {
		trip = 1
	}
	v[0] = math.Log2(trip) / 16
	if l.TripKnown {
		v[1] = 1
	}
	ops := len(l.Body)
	v[2] = clamp01(float64(ops) / 32)

	var add, mul, div, cmp, conv, bit, pred float64
	for _, in := range l.Body {
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpNeg:
			add++
		case ir.OpMul:
			mul++
		case ir.OpDiv, ir.OpRem:
			div++
		case ir.OpCmp, ir.OpSelect, ir.OpMin, ir.OpMax, ir.OpAbs:
			cmp++
		case ir.OpConvert:
			conv++
		case ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpNot, ir.OpShl, ir.OpShr:
			bit++
		}
		if in.Predicated {
			pred++
		}
	}
	if ops > 0 {
		n := float64(ops)
		v[3], v[4], v[5], v[6], v[7], v[8] = add/n, mul/n, div/n, cmp/n, conv/n, bit/n
		v[23] = pred / n
	}

	var loads, stores, unit, strided, gather, aligned float64
	widest, narrowest := 8, 64
	for _, a := range l.Accesses {
		if a.Kind == ir.Load {
			loads++
		} else {
			stores++
		}
		s := a.StrideFor(l.Label)
		switch {
		case !a.Affine:
			gather++
		case s == 1 || s == -1:
			unit++
		case s != 0:
			strided++
		}
		if a.Aligned {
			aligned++
		}
		if b := a.Elem.Bits(); b > widest {
			widest = b
		}
		if b := a.Elem.Bits(); b < narrowest {
			narrowest = b
		}
	}
	v[9] = clamp01(loads / 8)
	v[10] = clamp01(stores / 8)
	if total := loads + stores; total > 0 {
		v[11] = unit / total
		v[12] = strided / total
		v[13] = gather / total
		v[22] = aligned / total
	}
	if len(l.Reductions) > 0 {
		v[14] = 1
		if l.Reductions[0].Type.IsFloat() {
			v[15] = 1
		}
	}
	if l.HasIf {
		v[16] = 1
	}
	if l.HasCall {
		v[17] = 1
	}
	v[18] = float64(widest) / 64
	v[19] = float64(narrowest) / 64
	v[20] = clamp01(float64(ops) / (loads + stores + 1) / 4)
	v[21] = clamp01(float64(l.Depth+1) / 4)
	return v
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Embedder adapts the feature extractor to the rl.Embedder interface over a
// fixed slice of loops (index = sample ID). It is stateless and has no
// trainable parameters.
type Embedder struct {
	Loops []*ir.Loop
}

// Embed returns the feature vector; the backward state is nil.
func (e *Embedder) Embed(sample int) ([]float64, any) {
	return Vector(e.Loops[sample]), nil
}

// Backward is a no-op: hand-crafted features do not learn.
func (e *Embedder) Backward(any, []float64) {}

// Params returns nil.
func (e *Embedder) Params() []*nn.Param { return nil }

// Dim returns the feature width.
func (e *Embedder) Dim() int { return Dim }
