package features

import (
	"testing"
	"testing/quick"

	"neurovec/internal/dataset"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
)

func loopFor(t *testing.T, src string) *ir.Loop {
	t.Helper()
	return lower.MustProgram(lang.MustParse(src)).InnermostLoops()[0]
}

func TestVectorDimensions(t *testing.T) {
	l := loopFor(t, `
int a[256];
void f() {
    for (int i = 0; i < 256; i++) {
        a[i] = a[i] + 1;
    }
}
`)
	v := Vector(l)
	if len(v) != Dim {
		t.Fatalf("len = %d, want %d", len(v), Dim)
	}
	e := &Embedder{Loops: []*ir.Loop{l}}
	if e.Dim() != Dim {
		t.Fatal("Embedder.Dim mismatch")
	}
	got, st := e.Embed(0)
	if st != nil || len(got) != Dim {
		t.Fatal("Embed wrong shape/state")
	}
	e.Backward(nil, got) // must be a no-op
	if e.Params() != nil {
		t.Fatal("features must have no parameters")
	}
}

func TestFeatureSemantics(t *testing.T) {
	reduction := loopFor(t, `
float v[512];
float f() {
    float s = 0;
    for (int i = 0; i < 512; i++) {
        s += v[i] * v[i];
    }
    return s;
}
`)
	v := Vector(reduction)
	if v[14] != 1 {
		t.Error("reduction flag not set")
	}
	if v[15] != 1 {
		t.Error("float reduction flag not set")
	}

	gather := loopFor(t, `
int idx[256];
int d[4096];
int o[256];
void f() {
    for (int i = 0; i < 256; i++) {
        o[i] = d[idx[i]];
    }
}
`)
	g := Vector(gather)
	if g[13] <= 0 {
		t.Error("gather fraction zero for indirect access")
	}

	guarded := loopFor(t, `
int a[256];
void f() {
    for (int i = 0; i < 256; i++) {
        if (a[i] > 4) {
            a[i] = 0;
        }
    }
}
`)
	if Vector(guarded)[16] != 1 {
		t.Error("control-flow flag not set")
	}

	call := loopFor(t, `
int a[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = g(i);
    }
}
`)
	if Vector(call)[17] != 1 {
		t.Error("call flag not set")
	}
}

func TestFeaturesDistinguishLoops(t *testing.T) {
	a := Vector(loopFor(t, `
int x[64];
void f() {
    for (int i = 0; i < 64; i++) {
        x[i] = i;
    }
}
`))
	b := Vector(loopFor(t, `
double y[4096];
double g() {
    double s = 0;
    for (int i = 0; i < 4096; i++) {
        s += y[i] / 2.0;
    }
    return s;
}
`))
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("distinct loops have identical feature vectors")
	}
}

func TestFeaturesBoundedProperty(t *testing.T) {
	// All features lie in [0, 1] over the whole generated corpus.
	set := dataset.Generate(dataset.GenConfig{N: 150, Seed: 9})
	loops := make([]*ir.Loop, 0, len(set.Samples))
	for _, s := range set.Samples {
		p := lower.MustProgram(lang.MustParse(s.Source))
		loops = append(loops, p.InnermostLoops()...)
	}
	f := func(idx uint16) bool {
		l := loops[int(idx)%len(loops)]
		for _, v := range Vector(l) {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
