package evalharness

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"neurovec/internal/core"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden eval report")

// TestGoldenReport pins the eval report format and numbers for a tiny
// fixed-seed corpus plus the full tsvc suite (the extended-grammar kernels:
// calls, structs, switches, non-canonical loops). A diff here means either
// the report schema or the evaluation semantics changed — both must be
// deliberate. Regenerate with:
//
//	go test ./internal/evalharness -run TestGoldenReport -update
func TestGoldenReport(t *testing.T) {
	const seed = 7
	corpus, err := BuildCorpus("generated,tsvc", 4, seed)
	if err != nil {
		t.Fatal(err)
	}
	fw := core.New(core.DefaultConfig(), core.WithSeed(seed))
	opts := Options{Policy: "random", Seed: seed, Jobs: 1}
	report, err := New(fw).Run(context.Background(), corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := report.WriteJSON(&got, false); err != nil {
		t.Fatal(err)
	}

	// The acceptance contract: sharding must not move a byte.
	opts.Jobs = 3
	report2, err := New(core.New(core.DefaultConfig(), core.WithSeed(seed))).Run(context.Background(), corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if err := report2.WriteJSON(&sharded, false); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), sharded.Bytes()) {
		t.Fatal("report bytes differ between jobs=1 and jobs=3")
	}

	golden := filepath.Join("testdata", "report_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("eval report drifted from golden file %s.\nIf the change is deliberate, regenerate with -update.\n--- got ---\n%s\n--- want ---\n%s",
			golden, got.Bytes(), want)
	}
}
