package evalharness

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"neurovec/internal/policy"
)

// defaultEmbedCacheEntries bounds the cache: at the paper's 340-wide
// vectors (~2.7KB each) the default costs ~11MB — enough to hold every
// built-in suite many times over without letting a server-lifetime cache
// grow without limit across eval requests and hot-reloads.
const defaultEmbedCacheEntries = 4096

// EmbedCache memoizes learned code vectors across evaluation runs, bounded
// by insertion-order eviction. Keys combine the model version fingerprint,
// the source hash, and the loop label, so a hot-reloaded checkpoint can
// share one cache with its predecessor without ever serving stale vectors
// (stale versions' entries simply age out). Safe for concurrent use.
type EmbedCache struct {
	mu    sync.Mutex
	m     map[string][]float64
	order []string // insertion order, for eviction
	max   int
}

// NewEmbedCache returns an empty cache with the default size bound.
func NewEmbedCache() *EmbedCache {
	return &EmbedCache{m: map[string][]float64{}, max: defaultEmbedCacheEntries}
}

// Len returns the number of cached vectors.
func (c *EmbedCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

func embedKey(version, sourceHash, loop string) string {
	return version + "\x00" + sourceHash + "\x00" + loop
}

func sourceHash(source string) string {
	sum := sha256.Sum256([]byte(source))
	return hex.EncodeToString(sum[:])
}

// get returns the cached vector and whether it was present.
func (c *EmbedCache) get(key string) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	vec, ok := c.m[key]
	return vec, ok
}

// put stores a vector, evicting the oldest entries once the bound is hit.
// Eviction order never affects report numbers — a miss just recomputes.
func (c *EmbedCache) put(key string, vec []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; !exists {
		for len(c.m) >= c.max && len(c.order) > 0 {
			delete(c.m, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.m[key] = vec
}

// cachingPolicy wraps a policy so that every request's lazy Embed closure is
// served through the harness's EmbedCache. Embedding dominates the cost of
// the learned policies (the code2vec forward pass per loop), so repeated
// runs over the same corpus — the regression-gate workload — skip it
// entirely.
type cachingPolicy struct {
	inner   policy.Policy
	cache   *EmbedCache
	version string
}

func (p *cachingPolicy) Name() string { return p.inner.Name() }

// DeadlineAware forwards the inner policy's degradation contract so the
// inference pipeline still runs deadline-aware searches under an expired
// context.
func (p *cachingPolicy) DeadlineAware() bool { return policy.IsDeadlineAware(p.inner) }

// LoopPure forwards the inner policy's per-loop memoization contract.
func (p *cachingPolicy) LoopPure() bool { return policy.IsLoopPure(p.inner) }

func (p *cachingPolicy) Decide(ctx context.Context, req *policy.Request) (*policy.Decision, error) {
	if req.Embed != nil {
		inner := req.Embed
		key := embedKey(p.version, sourceHash(req.Source), req.Name)
		req.Embed = func() []float64 {
			if vec, ok := p.cache.get(key); ok {
				return vec
			}
			vec := inner()
			p.cache.put(key, vec)
			return vec
		}
	}
	return p.inner.Decide(ctx, req)
}
