// Package evalharness evaluates vectorization decision policies over whole
// benchmark corpora — the paper's aggregate claim (mean speedup over the
// baseline cost model, proximity to the brute-force oracle across suites)
// as a reusable, parallel experiment engine.
//
// A Harness shards a Corpus over a worker pool. For every file it runs the
// evaluated policy, the baseline, and the oracle side by side through the
// framework's stateless inference path, then folds per-file speedup, oracle
// regret, and decision agreement into per-suite and overall aggregates. The
// result is a deterministic Report: files and suites are in canonical
// order, numbers are a pure function of (corpus, spec), and the volatile
// wall-clock block is kept separate — so two runs at the same seed render
// byte-identical JSON/CSV regardless of the worker count, which is what
// makes the report usable as a CI regression gate.
//
// Learned policies pay one code2vec forward pass per loop; the harness
// memoizes those vectors in an EmbedCache keyed by model version and source
// hash, so repeated runs (and shared caches across hot-reloads) skip the
// embedding cost entirely.
//
//	h := evalharness.New(fw)
//	corpus, _ := evalharness.BuildCorpus("polybench,mibench", 0, 1)
//	report, _ := h.Run(ctx, corpus, evalharness.Options{Policy: "rl", Seed: 1})
//	report.WriteJSON(os.Stdout, false)
package evalharness

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"neurovec/internal/api"
	"neurovec/internal/core"
	"neurovec/internal/obs"
	"neurovec/internal/policy"
)

// Options configures one evaluation run.
type Options struct {
	// Policy is the registry name of the method under evaluation. Required.
	Policy string
	// Baseline names the policy whose cycles anchor speedup (default
	// "costmodel", the paper's LLVM baseline). Any registered policy works,
	// so two learned methods can be compared head to head.
	Baseline string
	// Oracle names the policy whose cycles anchor regret (default "brute",
	// the exhaustive search).
	Oracle string
	// Jobs is the worker-pool width (default GOMAXPROCS). It never affects
	// the report's numbers, only the wall time.
	Jobs int
	// Timeout bounds each policy inference (policy, baseline, and oracle
	// each get their own budget). Deadline-aware policies degrade to their
	// best-so-far answer and mark the file Truncated; others record a
	// per-file error. Zero means unbounded.
	Timeout time.Duration
	// Seed is stamped into the report spec; corpus generation upstream and
	// stochastic policies (via the host seed) must already agree with it
	// for the determinism contract to hold.
	Seed int64
}

// Harness evaluates policies over corpora against one framework. Create it
// once and reuse it: the embedding cache carries across runs.
type Harness struct {
	fw     *core.Framework
	embeds *EmbedCache
}

// New returns a harness over fw with a fresh embedding cache.
func New(fw *core.Framework) *Harness {
	return &Harness{fw: fw, embeds: NewEmbedCache()}
}

// WithEmbedCache shares an existing embedding cache (e.g. one owned by the
// serving layer, surviving model hot-reloads) and returns the harness.
func (h *Harness) WithEmbedCache(c *EmbedCache) *Harness {
	if c != nil {
		h.embeds = c
	}
	return h
}

// EmbedCacheLen reports how many code vectors the harness has memoized.
func (h *Harness) EmbedCacheLen() int { return h.embeds.Len() }

// Run evaluates opts.Policy over the corpus. Per-file failures (parse
// errors, loop-free programs, per-inference deadlines on non-degrading
// policies) are recorded in the report; Run itself fails only on unusable
// options, unresolvable policies, or parent-context cancellation.
func (h *Harness) Run(ctx context.Context, corpus *Corpus, opts Options) (*Report, error) {
	if corpus == nil || len(corpus.Items) == 0 {
		return nil, errors.New("evalharness: empty corpus")
	}
	if opts.Policy == "" {
		return nil, errors.New("evalharness: Options.Policy is required")
	}
	if opts.Baseline == "" {
		opts.Baseline = "costmodel"
	}
	if opts.Oracle == "" {
		opts.Oracle = "brute"
	}
	if opts.Jobs <= 0 {
		opts.Jobs = runtime.GOMAXPROCS(0)
	}

	// Resolve every role up front so a misconfigured run (unknown policy,
	// untrained agent) fails before any simulation work.
	roles := [3]string{opts.Policy, opts.Baseline, opts.Oracle}
	var pols [3]policy.Policy
	version := h.fw.ModelVersion()
	for i, name := range roles {
		p, err := h.fw.Policy(name)
		if err != nil {
			return nil, fmt.Errorf("evalharness: resolve %s: %w", name, err)
		}
		pols[i] = &cachingPolicy{inner: p, cache: h.embeds, version: version}
	}

	started := time.Now() //lint:allow detpkg the report's timing section measures real wall-clock latency
	files := make([]FileResult, len(corpus.Items))
	jobs := opts.Jobs
	if jobs > len(corpus.Items) {
		jobs = len(corpus.Items)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(corpus.Items) || ctx.Err() != nil {
					return
				}
				files[i] = h.evalOne(ctx, corpus.Items[i], pols, opts)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	report := &Report{
		Spec: Spec{
			APIVersion:   api.Version,
			Policy:       opts.Policy,
			Baseline:     opts.Baseline,
			Oracle:       opts.Oracle,
			Seed:         opts.Seed,
			Arch:         h.fw.Arch().Name,
			ModelVersion: version,
			TimeoutMS:    opts.Timeout.Milliseconds(),
			Suites:       corpus.Suites(),
			Files:        len(corpus.Items),
		},
		Files: files,
	}
	for _, suite := range report.Spec.Suites {
		report.Suites = append(report.Suites, aggregate(suite, files))
	}
	overall := aggregate("", files)
	overall.Suite = ""
	report.Overall = overall
	//lint:allow detpkg the report's timing section measures real wall-clock latency
	report.Timing = buildTiming(files, time.Since(started), jobs)
	return report, nil
}

// evalOne scores one corpus item: policy, baseline, and oracle inference
// plus the derived metrics. Identical role names share one inference. Each
// inference runs through the loop-granular v2 entrypoint, so the report's
// per-file decisions are the same api.Decision objects the HTTP service
// returns from POST /v2/compile — one schema across both surfaces.
func (h *Harness) evalOne(ctx context.Context, it Item, pols [3]policy.Policy, opts Options) FileResult {
	ctx, fsp := obs.StartSpan(ctx, "eval_file")
	fsp.Annotate(it.Suite + "/" + it.Name)
	defer fsp.End()
	res := FileResult{Suite: it.Suite, Name: it.Name}

	infs := make(map[string]*api.CompileResponse, 3)
	run := func(ctx context.Context, p policy.Policy) (*api.CompileResponse, error) {
		if inf, ok := infs[p.Name()]; ok {
			return inf, nil
		}
		rctx, cancel := ctx, context.CancelFunc(func() {})
		if opts.Timeout > 0 {
			rctx, cancel = context.WithTimeout(ctx, opts.Timeout)
		}
		defer cancel()
		inf, err := h.fw.PredictLoops(rctx, it.Source, it.Params, core.WithPolicy(p))
		if err != nil {
			return nil, err
		}
		infs[p.Name()] = inf
		return inf, nil
	}

	started := time.Now() //lint:allow detpkg per-file latency is a report field, not decision input
	polInf, err := run(ctx, pols[0])
	res.latency = time.Since(started) //lint:allow detpkg per-file latency is a report field, not decision input
	var baseInf, oracleInf *api.CompileResponse
	if err == nil {
		baseInf, err = run(ctx, pols[1])
	}
	if err == nil {
		// The oracle's exhaustive sweep dominates eval wall time; give it a
		// dedicated span so the cost is visible next to plain inference.
		octx, osp := obs.StartSpan(ctx, "oracle")
		osp.Annotate(pols[2].Name())
		oracleInf, err = run(octx, pols[2])
		osp.End()
	}
	if err != nil {
		res.Error = err.Error()
		return res
	}

	// The MiBench regime: fixed scalar work proportional to the baseline's
	// cycles dilutes loop-level wins into end-to-end numbers.
	scalarWork := it.ScalarWorkFactor * baseInf.PredictedCycles
	res.Loops = len(polInf.Loops)
	res.Decisions = polInf.Loops
	res.BaselineCycles = baseInf.PredictedCycles + scalarWork
	res.PolicyCycles = polInf.PredictedCycles + scalarWork
	res.OracleCycles = oracleInf.PredictedCycles + scalarWork
	res.Speedup = safeRatio(res.BaselineCycles, res.PolicyCycles)
	res.OracleSpeedup = safeRatio(res.BaselineCycles, res.OracleCycles)
	res.Regret = safeRatio(res.PolicyCycles, res.OracleCycles) - 1
	res.Truncated = polInf.Truncated || baseInf.Truncated || oracleInf.Truncated

	// Agreement matches decisions by stable LoopID: both inferences parsed
	// the same source, so IDs line up exactly.
	oracleBy := make(map[api.LoopID][2]int, len(oracleInf.Loops))
	for _, d := range oracleInf.Loops {
		oracleBy[d.Loop] = [2]int{d.VF, d.IF}
	}
	for _, d := range polInf.Loops {
		if o, ok := oracleBy[d.Loop]; ok && o[0] == d.VF && o[1] == d.IF {
			res.AgreedLoops++
		}
	}
	return res
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}
