package evalharness

import (
	"testing"

	"neurovec/internal/diag"
	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
)

// TestShippedCorporaAreSemaClean is the repo invariant behind CI's corpus
// sweep: every shipped benchmark (and the deterministic generated suite at
// its default seed) must parse and check with zero diagnostics — errors
// would reject under strict mode, and warnings would pollute every compile
// response downstream.
func TestShippedCorporaAreSemaClean(t *testing.T) {
	corpus, err := BuildCorpus("polybench,mibench,figure7,generated", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Items) == 0 {
		t.Fatal("empty corpus")
	}
	for _, it := range corpus.Items {
		name := it.Suite + "/" + it.Name
		prog, err := lang.ParseFile(name, it.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		info := sema.Check(name, prog)
		if len(info.Diags) != 0 {
			t.Errorf("%s: not sema-clean:\n%s", name, info.Diags.String())
		}
	}
}

// TestTSVCCorpusSemaPolicy pins the diagnostic contract for the tsvc suite,
// which deliberately exercises grammar the clean suites avoid: kernels must
// never produce sema errors, and any warnings must come from the two codes
// that describe intentionally non-vectorizable shapes (non-canonical loop
// form, early exit). Anything else — an unused variable, an uninitialised
// read — is a kernel bug, not a feature of the suite.
func TestTSVCCorpusSemaPolicy(t *testing.T) {
	allowedWarnings := map[string]bool{
		sema.CodeNonCanonical: true,
		sema.CodeEarlyExit:    true,
	}
	corpus, err := BuildCorpus(SuiteTSVC, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Items) < 30 {
		t.Fatalf("tsvc suite has %d kernels, want >= 30", len(corpus.Items))
	}
	for _, it := range corpus.Items {
		name := it.Suite + "/" + it.Name
		prog, err := lang.ParseFile(name, it.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		info := sema.Check(name, prog)
		for _, d := range info.Diags {
			if d.Severity == diag.Error {
				t.Errorf("%s: sema error: %s", name, d.String())
			} else if !allowedWarnings[d.Code] {
				t.Errorf("%s: unexpected warning %s: %s", name, d.Code, d.String())
			}
		}
	}
}
