package evalharness

import (
	"testing"

	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
)

// TestShippedCorporaAreSemaClean is the repo invariant behind CI's corpus
// sweep: every shipped benchmark (and the deterministic generated suite at
// its default seed) must parse and check with zero diagnostics — errors
// would reject under strict mode, and warnings would pollute every compile
// response downstream.
func TestShippedCorporaAreSemaClean(t *testing.T) {
	corpus, err := BuildCorpus("polybench,mibench,figure7,generated", 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus.Items) == 0 {
		t.Fatal("empty corpus")
	}
	for _, it := range corpus.Items {
		name := it.Suite + "/" + it.Name
		prog, err := lang.ParseFile(name, it.Source)
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		info := sema.Check(name, prog)
		if len(info.Diags) != 0 {
			t.Errorf("%s: not sema-clean:\n%s", name, info.Diags.String())
		}
	}
}
