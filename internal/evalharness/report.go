package evalharness

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"neurovec/internal/api"
)

// Spec records everything that determines a report's numbers. Two runs with
// equal specs over equal corpora produce byte-identical reports (timing
// aside); the worker count is deliberately absent because sharding never
// changes the numbers, only the wall time.
type Spec struct {
	// APIVersion is the wire-schema version of the per-loop decisions in
	// Files (see package neurovec/internal/api).
	APIVersion int `json:"api_version"`
	// Policy, Baseline, and Oracle are the registry names of the evaluated
	// method, the speedup anchor, and the regret anchor.
	Policy   string `json:"policy"`
	Baseline string `json:"baseline"`
	Oracle   string `json:"oracle"`
	// Seed drives corpus generation and stochastic policies.
	Seed int64 `json:"seed"`
	// Arch names the target machine model; ModelVersion fingerprints the
	// checkpoint the learned policies decided with.
	Arch         string `json:"arch,omitempty"`
	ModelVersion string `json:"model_version,omitempty"`
	// TimeoutMS is the per-inference budget (0 = unbounded). It belongs in
	// the spec because deadline truncation changes decisions.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Suites and Files summarise the corpus shape.
	Suites []string `json:"suites"`
	Files  int      `json:"files"`
}

// FileResult is the evaluation outcome for one corpus item. Cycle counts
// include the item's scalar-work offset (the MiBench whole-program regime),
// so Speedup is end-to-end, not loop-only.
type FileResult struct {
	// Suite and Name identify the corpus item; Loops counts its decided
	// innermost loops.
	Suite string `json:"suite"`
	Name  string `json:"name"`
	Loops int    `json:"loops"`
	// Decisions are the evaluated policy's per-loop answers in the shared
	// v2 schema — the same api.Decision objects POST /v2/compile returns,
	// with stable LoopIDs and provenance.
	Decisions []api.Decision `json:"decisions,omitempty"`
	// BaselineCycles / PolicyCycles / OracleCycles are the simulated program
	// cycle counts under the baseline, evaluated, and oracle policies.
	BaselineCycles float64 `json:"baseline_cycles"`
	PolicyCycles   float64 `json:"policy_cycles"`
	OracleCycles   float64 `json:"oracle_cycles"`
	// Speedup is BaselineCycles / PolicyCycles; OracleSpeedup is the same
	// ratio for the oracle — the headroom the policy is chasing.
	Speedup       float64 `json:"speedup"`
	OracleSpeedup float64 `json:"oracle_speedup"`
	// Regret is PolicyCycles / OracleCycles - 1: 0 means the policy matched
	// the oracle; 0.25 means it left 25% on the table.
	Regret float64 `json:"regret"`
	// AgreedLoops counts loops where the policy's (VF, IF) equals the
	// oracle's exactly.
	AgreedLoops int `json:"agreed_loops"`
	// Truncated reports that a deadline cut short at least one search.
	Truncated bool `json:"truncated,omitempty"`
	// Error is set when the item could not be evaluated; such files carry
	// zero metrics and are excluded from aggregates.
	Error string `json:"error,omitempty"`

	// latency is the wall time of the evaluated policy's inference; it is
	// volatile across runs, so it feeds the Timing block instead of the
	// deterministic JSON body.
	latency time.Duration
}

// SuiteResult aggregates one suite's files (and, for the overall row, the
// whole corpus). Files with errors count in Errors and are excluded from
// every mean.
type SuiteResult struct {
	// Suite is the aggregated suite name ("" for the overall row); Files,
	// Errors, and Loops count its items, failed items, and decided loops.
	Suite  string `json:"suite"`
	Files  int    `json:"files"`
	Errors int    `json:"errors,omitempty"`
	Loops  int    `json:"loops"`
	// MeanSpeedup and GeoMeanSpeedup aggregate per-file end-to-end speedup
	// over the baseline; MeanOracleSpeedup is the brute-force ceiling.
	MeanSpeedup       float64 `json:"mean_speedup"`
	GeoMeanSpeedup    float64 `json:"geomean_speedup"`
	MeanOracleSpeedup float64 `json:"mean_oracle_speedup"`
	// MeanRegret averages per-file regret; Agreement is the loop-weighted
	// fraction of decisions identical to the oracle's; Truncated counts
	// files whose searches a deadline cut short.
	MeanRegret float64 `json:"mean_regret"`
	Agreement  float64 `json:"agreement"`
	Truncated  int     `json:"truncated,omitempty"`
}

// Timing is the volatile block of a report: wall-clock measurements that
// legitimately differ run to run. It is excluded from the deterministic
// rendering (WriteJSON with timing=false, WriteCSV) so reports at equal
// seeds are byte-identical.
type Timing struct {
	// WallMS is the whole run's wall-clock time; Jobs the worker count that
	// produced it.
	WallMS float64 `json:"wall_ms"`
	Jobs   int     `json:"jobs"`
	// Policy-inference latency percentiles across files, in milliseconds.
	FileP50MS float64 `json:"file_p50_ms"`
	FileP90MS float64 `json:"file_p90_ms"`
	FileP99MS float64 `json:"file_p99_ms"`
}

// Report is the full result of one evaluation run. Files and Suites are in
// canonical (suite, name) order.
type Report struct {
	// Spec is everything that determined the numbers; Overall aggregates
	// the whole corpus, Suites each suite, Files each item.
	Spec    Spec          `json:"spec"`
	Overall SuiteResult   `json:"overall"`
	Suites  []SuiteResult `json:"suites"`
	Files   []FileResult  `json:"files"`
	// Timing is the volatile wall-clock block (nil in deterministic
	// renderings).
	Timing *Timing `json:"timing,omitempty"`
}

// WriteJSON renders the report as indented JSON. With timing=false the
// volatile Timing block is dropped and the bytes are a pure function of the
// spec and corpus — the form the golden test and the CI artifact pin.
func (r *Report) WriteJSON(w io.Writer, timing bool) error {
	out := *r
	if !timing {
		out.Timing = nil
	}
	body, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	_, err = w.Write(body)
	return err
}

// WriteCSV renders the per-file results as CSV (deterministic; no timing).
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "suite,name,loops,baseline_cycles,policy_cycles,oracle_cycles,speedup,oracle_speedup,regret,agreed_loops,truncated,error\n"); err != nil {
		return err
	}
	for _, f := range r.Files {
		fields := []string{
			csvEscape(f.Suite), csvEscape(f.Name), strconv.Itoa(f.Loops),
			formatFloat(f.BaselineCycles), formatFloat(f.PolicyCycles), formatFloat(f.OracleCycles),
			formatFloat(f.Speedup), formatFloat(f.OracleSpeedup), formatFloat(f.Regret),
			strconv.Itoa(f.AgreedLoops), strconv.FormatBool(f.Truncated), csvEscape(f.Error),
		}
		if _, err := io.WriteString(w, strings.Join(fields, ",")+"\n"); err != nil {
			return err
		}
	}
	return nil
}

// Summary renders the per-suite aggregates as a human-readable table — the
// CLI's stderr companion to the machine-readable report.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "policy %s vs baseline %s (oracle %s), %d files\n",
		r.Spec.Policy, r.Spec.Baseline, r.Spec.Oracle, r.Spec.Files)
	fmt.Fprintf(&b, "%-12s %6s %6s %10s %10s %10s %10s %10s\n",
		"suite", "files", "loops", "speedup", "geomean", "oracle", "regret", "agree")
	rows := append([]SuiteResult{}, r.Suites...)
	rows = append(rows, r.Overall)
	for _, s := range rows {
		label := s.Suite
		if label == "" {
			label = "overall"
		}
		fmt.Fprintf(&b, "%-12s %6d %6d %9.3fx %9.3fx %9.3fx %9.1f%% %9.1f%%\n",
			label, s.Files, s.Loops, s.MeanSpeedup, s.GeoMeanSpeedup,
			s.MeanOracleSpeedup, 100*s.MeanRegret, 100*s.Agreement)
	}
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// aggregate folds file results (already in canonical order) into one suite
// row. suite == "" aggregates everything.
func aggregate(suite string, files []FileResult) SuiteResult {
	agg := SuiteResult{Suite: suite}
	var sumSpeed, sumLogSpeed, sumOracle, sumRegret float64
	var agreed, ok int
	for _, f := range files {
		if suite != "" && f.Suite != suite {
			continue
		}
		agg.Files++
		if f.Error != "" {
			agg.Errors++
			continue
		}
		ok++
		agg.Loops += f.Loops
		agreed += f.AgreedLoops
		sumSpeed += f.Speedup
		if f.Speedup > 0 {
			sumLogSpeed += math.Log(f.Speedup)
		}
		sumOracle += f.OracleSpeedup
		sumRegret += f.Regret
		if f.Truncated {
			agg.Truncated++
		}
	}
	if ok > 0 {
		n := float64(ok)
		agg.MeanSpeedup = sumSpeed / n
		agg.GeoMeanSpeedup = math.Exp(sumLogSpeed / n)
		agg.MeanOracleSpeedup = sumOracle / n
		agg.MeanRegret = sumRegret / n
	}
	if agg.Loops > 0 {
		agg.Agreement = float64(agreed) / float64(agg.Loops)
	}
	return agg
}

// percentile returns the q-th percentile (0 < q <= 1) of sorted durations.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// buildTiming folds per-file latencies into the volatile block.
func buildTiming(files []FileResult, wall time.Duration, jobs int) *Timing {
	lats := make([]time.Duration, 0, len(files))
	for _, f := range files {
		if f.Error == "" {
			lats = append(lats, f.latency)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return &Timing{
		WallMS:    ms(wall),
		Jobs:      jobs,
		FileP50MS: ms(percentile(lats, 0.50)),
		FileP90MS: ms(percentile(lats, 0.90)),
		FileP99MS: ms(percentile(lats, 0.99)),
	}
}
