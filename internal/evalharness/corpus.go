package evalharness

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"neurovec/internal/dataset"
)

// Item is one program of an evaluation corpus.
type Item struct {
	// Suite groups items for aggregation ("polybench", "generated", ...).
	Suite string
	// Name identifies the item within its suite.
	Name string
	// Source is the program text.
	Source string
	// Params optionally supplies runtime values for symbolic loop bounds.
	Params map[string]int64
	// ScalarWorkFactor adds fixed non-loop work equal to this multiple of
	// the baseline cycle count to every measurement — the MiBench regime
	// where "the loops constitute a minor portion of the code".
	ScalarWorkFactor float64
}

// Corpus is an ordered collection of evaluation items. Run iterates items
// in slice order; Sort establishes the canonical (suite, name) order that
// makes reports deterministic.
type Corpus struct {
	// Items is the ordered item list; Sort establishes canonical order.
	Items []Item
}

// Add appends items.
func (c *Corpus) Add(items ...Item) { c.Items = append(c.Items, items...) }

// Len returns the number of items.
func (c *Corpus) Len() int { return len(c.Items) }

// Sort orders items by (suite, name) — the canonical report order.
func (c *Corpus) Sort() {
	sort.SliceStable(c.Items, func(i, j int) bool {
		a, b := c.Items[i], c.Items[j]
		if a.Suite != b.Suite {
			return a.Suite < b.Suite
		}
		return a.Name < b.Name
	})
}

// Suites returns the distinct suite names in sorted order.
func (c *Corpus) Suites() []string {
	seen := map[string]bool{}
	var out []string
	for _, it := range c.Items {
		if !seen[it.Suite] {
			seen[it.Suite] = true
			out = append(out, it.Suite)
		}
	}
	sort.Strings(out)
	return out
}

// FromBenchmarks wraps a dataset benchmark list as one suite.
func FromBenchmarks(suite string, bs []dataset.Benchmark) *Corpus {
	c := &Corpus{}
	for _, b := range bs {
		c.Add(Item{
			Suite:            suite,
			Name:             b.Name,
			Source:           b.Source,
			Params:           b.ParamValues,
			ScalarWorkFactor: b.ScalarWorkFactor,
		})
	}
	return c
}

// FromSet wraps a generated training set as one suite.
func FromSet(suite string, set *dataset.Set) *Corpus {
	c := &Corpus{}
	for _, s := range set.Samples {
		c.Add(Item{Suite: suite, Name: s.Name, Source: s.Source})
	}
	return c
}

// FromDir loads every .c file under dir (recursively, in sorted path order)
// as one suite. Item names are slash-separated paths relative to dir.
func FromDir(suite, dir string) (*Corpus, error) {
	c := &Corpus{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ".c" {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			rel = path
		}
		c.Add(Item{Suite: suite, Name: filepath.ToSlash(rel), Source: string(src)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.Sort()
	return c, nil
}

// Suite names BuildCorpus understands.
const (
	SuitePolyBench = "polybench"
	SuiteMiBench   = "mibench"
	SuiteFigure7   = "figure7"
	SuiteGenerated = "generated"
	SuiteTSVC      = "tsvc"
)

// BuildCorpus assembles a corpus from a comma-separated spec of built-in
// suite names: "polybench", "mibench", "figure7" (the paper's twelve
// held-out benchmarks), "tsvc" (TSVC-style kernels over the extended
// grammar: calls, structs, switches, multi-dimensional subscripts,
// non-canonical loops), and "generated" (genN synthetic programs from the
// seed). The result is in canonical (suite, name) order.
func BuildCorpus(spec string, genN int, seed int64) (*Corpus, error) {
	if spec == "" {
		spec = SuiteGenerated
	}
	if genN <= 0 {
		genN = 16
	}
	c := &Corpus{}
	for _, name := range strings.Split(spec, ",") {
		switch strings.TrimSpace(name) {
		case SuitePolyBench:
			c.Add(FromBenchmarks(SuitePolyBench, dataset.PolyBench()).Items...)
		case SuiteMiBench:
			c.Add(FromBenchmarks(SuiteMiBench, dataset.MiBench()).Items...)
		case SuiteFigure7, "eval":
			c.Add(FromBenchmarks(SuiteFigure7, dataset.EvalBenchmarks()).Items...)
		case SuiteTSVC:
			c.Add(FromBenchmarks(SuiteTSVC, dataset.TSVC()).Items...)
		case SuiteGenerated:
			c.Add(FromSet(SuiteGenerated, dataset.Generate(dataset.GenConfig{N: genN, Seed: seed})).Items...)
		case "":
			continue
		default:
			return nil, fmt.Errorf("evalharness: unknown corpus suite %q (want %s, %s, %s, %s, or %s)",
				name, SuitePolyBench, SuiteMiBench, SuiteFigure7, SuiteTSVC, SuiteGenerated)
		}
	}
	if len(c.Items) == 0 {
		return nil, fmt.Errorf("evalharness: empty corpus spec %q", spec)
	}
	c.Sort()
	return c, nil
}
