package evalharness

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"neurovec/internal/core"
	"neurovec/internal/dataset"
	"neurovec/internal/rl"
)

func modelFree(t *testing.T, seed int64) *core.Framework {
	t.Helper()
	return core.New(core.DefaultConfig(), core.WithSeed(seed))
}

func runJSON(t *testing.T, h *Harness, corpus *Corpus, opts Options) []byte {
	t.Helper()
	report, err := h.Run(context.Background(), corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRunDeterministicAcrossJobsAndRuns(t *testing.T) {
	corpus, err := BuildCorpus("generated", 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	h := New(modelFree(t, 3))
	opts := Options{Policy: "random", Seed: 3}

	opts.Jobs = 1
	first := runJSON(t, h, corpus, opts)
	opts.Jobs = 4
	second := runJSON(t, h, corpus, opts)
	if !bytes.Equal(first, second) {
		t.Fatalf("report differs across worker counts:\n--- jobs=1\n%s\n--- jobs=4\n%s", first, second)
	}
	// A fresh harness (cold caches, separate framework) must agree too.
	third := runJSON(t, New(modelFree(t, 3)), corpus, Options{Policy: "random", Seed: 3, Jobs: 2})
	if !bytes.Equal(first, third) {
		t.Fatal("report differs across harness instances at the same seed")
	}
}

func TestBruteAgainstItselfHasZeroRegret(t *testing.T) {
	corpus, err := BuildCorpus("generated", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := New(modelFree(t, 1))
	report, err := h.Run(context.Background(), corpus, Options{Policy: "brute", Seed: 1, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range report.Files {
		if f.Error != "" {
			t.Fatalf("%s/%s: unexpected error %q", f.Suite, f.Name, f.Error)
		}
		if f.Regret != 0 {
			t.Errorf("%s: brute vs brute regret = %v, want 0", f.Name, f.Regret)
		}
		if f.AgreedLoops != f.Loops {
			t.Errorf("%s: agreement %d/%d, want full", f.Name, f.AgreedLoops, f.Loops)
		}
		if f.Speedup != f.OracleSpeedup {
			t.Errorf("%s: speedup %v != oracle speedup %v", f.Name, f.Speedup, f.OracleSpeedup)
		}
		if f.Speedup < 1 {
			t.Errorf("%s: oracle slower than baseline (%vx)", f.Name, f.Speedup)
		}
	}
	if report.Overall.Agreement != 1 {
		t.Errorf("overall agreement = %v, want 1", report.Overall.Agreement)
	}
	if report.Overall.Errors != 0 {
		t.Errorf("overall errors = %d, want 0", report.Overall.Errors)
	}
}

func TestPerFileErrorsAreRecordedNotFatal(t *testing.T) {
	corpus := &Corpus{}
	corpus.Add(
		Item{Suite: "s", Name: "bad_parse", Source: "void f( {"},
		Item{Suite: "s", Name: "no_loops", Source: "int x; void f() { x = 1; }"},
		Item{Suite: "s", Name: "ok", Source: "float a[64]; float b[64]; void f() { for (int i = 0; i < 64; i++) { a[i] = a[i] + b[i]; } }"},
	)
	h := New(modelFree(t, 1))
	report, err := h.Run(context.Background(), corpus, Options{Policy: "costmodel", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if report.Overall.Errors != 2 {
		t.Fatalf("errors = %d, want 2 (report: %+v)", report.Overall.Errors, report.Files)
	}
	byName := map[string]FileResult{}
	for _, f := range report.Files {
		byName[f.Name] = f
	}
	if byName["bad_parse"].Error == "" || byName["no_loops"].Error == "" {
		t.Fatal("expected per-file errors for unparseable and loop-free items")
	}
	if byName["ok"].Error != "" || byName["ok"].Speedup <= 0 {
		t.Fatalf("healthy item mis-scored: %+v", byName["ok"])
	}
	// Errored files must not drag the aggregates to zero.
	if report.Overall.MeanSpeedup <= 0 {
		t.Fatalf("overall mean speedup = %v, want > 0", report.Overall.MeanSpeedup)
	}
}

func TestRunRejectsBadOptions(t *testing.T) {
	h := New(modelFree(t, 1))
	corpus, err := BuildCorpus("generated", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Run(context.Background(), &Corpus{}, Options{Policy: "brute"}); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := h.Run(context.Background(), corpus, Options{}); err == nil {
		t.Error("missing policy accepted")
	}
	if _, err := h.Run(context.Background(), corpus, Options{Policy: "no-such-policy"}); err == nil {
		t.Error("unknown policy accepted")
	}
	// rl without a trained agent must fail at resolution or first decide —
	// either way Run reports it rather than emitting a zeroed report.
	if report, err := h.Run(context.Background(), corpus, Options{Policy: "rl"}); err == nil {
		for _, f := range report.Files {
			if f.Error == "" {
				t.Error("rl without an agent produced a decision")
			}
		}
	}
}

func TestDeadlineTruncationIsReported(t *testing.T) {
	corpus, err := BuildCorpus("generated", 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := New(modelFree(t, 2))
	// Everything deadline-aware: an expired budget degrades each search to
	// best-so-far instead of failing the file.
	report, err := h.Run(context.Background(), corpus, Options{
		Policy: "brute", Baseline: "brute", Oracle: "brute",
		Timeout: time.Nanosecond, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Overall.Truncated != report.Overall.Files {
		t.Fatalf("truncated = %d, want all %d files", report.Overall.Truncated, report.Overall.Files)
	}
	if report.Spec.TimeoutMS != 0 {
		t.Fatalf("sub-millisecond timeout rounded to %dms in spec", report.Spec.TimeoutMS)
	}
}

func TestTrainedPolicyUsesEmbedCache(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a small agent")
	}
	cfg := core.DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	cfg.Embed.MaxContexts = 30
	cfg.Seed = 1
	fw := core.New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 12, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	rc := rl.DefaultConfig(nil, nil)
	rc.Batch = 48
	rc.MiniBatch = 16
	rc.Iterations = 2
	rc.Hidden = []int{16, 16}
	fw.Train(&rc)

	corpus, err := BuildCorpus("generated", 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	h := New(fw)
	first := runJSON(t, h, corpus, Options{Policy: "rl", Seed: 9, Jobs: 2})
	if h.EmbedCacheLen() == 0 {
		t.Fatal("rl evaluation left the embedding cache empty")
	}
	// Warm-cache rerun must not change a single byte.
	second := runJSON(t, h, corpus, Options{Policy: "rl", Seed: 9, Jobs: 3})
	if !bytes.Equal(first, second) {
		t.Fatal("warm embedding cache changed the report")
	}
}

func TestBuildCorpusSpecs(t *testing.T) {
	c, err := BuildCorpus("polybench,mibench,figure7", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	suites := c.Suites()
	want := []string{"figure7", "mibench", "polybench"}
	if strings.Join(suites, ",") != strings.Join(want, ",") {
		t.Fatalf("suites = %v, want %v", suites, want)
	}
	for i := 1; i < len(c.Items); i++ {
		a, b := c.Items[i-1], c.Items[i]
		if a.Suite > b.Suite || (a.Suite == b.Suite && a.Name > b.Name) {
			t.Fatalf("corpus not in canonical order at %d: %v then %v", i, a.Name, b.Name)
		}
	}
	if _, err := BuildCorpus("bogus", 0, 1); err == nil {
		t.Fatal("unknown suite accepted")
	}
	if _, err := BuildCorpus(",", 0, 1); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestReportCSVAndSummary(t *testing.T) {
	corpus, err := BuildCorpus("generated", 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	h := New(modelFree(t, 5))
	report, err := h.Run(context.Background(), corpus, Options{Policy: "costmodel", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var csv1, csv2 bytes.Buffer
	if err := report.WriteCSV(&csv1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(csv1.String(), "\n"), "\n")
	if len(lines) != 1+len(report.Files) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+len(report.Files))
	}
	if !strings.HasPrefix(lines[0], "suite,name,loops,") {
		t.Fatalf("CSV header = %q", lines[0])
	}
	report2, err := h.Run(context.Background(), corpus, Options{Policy: "costmodel", Seed: 5, Jobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := report2.WriteCSV(&csv2); err != nil {
		t.Fatal(err)
	}
	if csv1.String() != csv2.String() {
		t.Fatal("CSV differs across runs at the same seed")
	}
	if s := report.Summary(); !strings.Contains(s, "overall") || !strings.Contains(s, "generated") {
		t.Fatalf("summary missing rows:\n%s", s)
	}
	// Timing is present on the report but absent from deterministic JSON.
	if report.Timing == nil || report.Timing.Jobs == 0 {
		t.Fatal("timing block missing")
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "\"timing\"") {
		t.Fatal("deterministic JSON leaked the timing block")
	}
	buf.Reset()
	if err := report.WriteJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"timing\"") {
		t.Fatal("timing JSON missing the timing block")
	}
}

func TestEmbedCacheBounded(t *testing.T) {
	c := NewEmbedCache()
	c.max = 8
	for i := 0; i < 50; i++ {
		c.put(string(rune('a'+i%26))+string(rune('0'+i/26)), []float64{float64(i)})
	}
	if c.Len() > 8 {
		t.Fatalf("cache grew to %d entries past its bound of 8", c.Len())
	}
	// The most recent insertion survives; evicted keys just miss.
	if _, ok := c.get("x1"); !ok {
		t.Fatal("most recent entry evicted")
	}
	// Overwriting an existing key must not duplicate it in the order list.
	before := c.Len()
	c.put("x1", []float64{99})
	if c.Len() != before {
		t.Fatalf("overwrite changed entry count %d -> %d", before, c.Len())
	}
	if v, _ := c.get("x1"); v[0] != 99 {
		t.Fatalf("overwrite not visible: %v", v)
	}
}
