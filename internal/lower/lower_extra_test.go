package lower

import (
	"testing"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
)

func TestConstFoldingOperators(t *testing.T) {
	cases := []struct {
		expr string
		trip int64
	}{
		{"16 % 5", 1},    // 1 iteration to bound 1
		{"1 << 5", 32},   // 32
		{"256 >> 2", 64}, // 64
		// Bitwise operators bind looser than < in C, so parenthesize.
		{"(96 & 127)", 96},
		{"(64 | 32)", 96},
		{"(100 ^ 4)", 96},
		{"~(-65)", 64},        // bitwise not: ~(-65) = 64
		{"-(-48)", 48},        // double negation
		{"(int) 24.0", 0},     // float cast is not constant-folded -> runtime
		{"(int) (3 * 8)", 24}, // integer cast folds
	}
	for _, c := range cases {
		src := "void f() { for (int i = 0; i < " + c.expr + "; i++) { } }"
		p := lowerSrc(t, src)
		l := p.Func("f").Loops[0]
		if c.trip == 0 {
			if l.TripKnown {
				t.Errorf("%q: expected runtime trip, got %d", c.expr, l.Trip)
			}
			continue
		}
		if !l.TripKnown || l.Trip != c.trip {
			t.Errorf("%q: trip = %d (known=%v), want %d", c.expr, l.Trip, l.TripKnown, c.trip)
		}
	}
}

func TestFlippedComparisonBound(t *testing.T) {
	p := lowerSrc(t, `
void f() {
    for (int i = 0; 100 > i; i++) { }
}
`)
	l := p.Func("f").Loops[0]
	if !l.TripKnown || l.Trip != 100 {
		t.Fatalf("flipped bound: trip = %d known=%v", l.Trip, l.TripKnown)
	}
}

func TestNotEqualLoopBound(t *testing.T) {
	p := lowerSrc(t, `
void f() {
    for (int i = 0; i != 64; i++) { }
}
`)
	l := p.Func("f").Loops[0]
	if !l.TripKnown || l.Trip != 64 {
		t.Fatalf("!= bound: trip = %d known=%v", l.Trip, l.TripKnown)
	}
}

func TestAssignFormStep(t *testing.T) {
	p := lowerSrc(t, `
void f() {
    for (int i = 0; i < 60; i = i + 3) { }
    for (int j = 60; j > 0; j = j - 5) { }
}
`)
	if got := p.Func("f").Loops[0].Trip; got != 20 {
		t.Errorf("i=i+3 trip = %d, want 20", got)
	}
	if got := p.Func("f").Loops[1].Trip; got != 12 {
		t.Errorf("j=j-5 trip = %d, want 12", got)
	}
}

func TestMinMaxReductionVariants(t *testing.T) {
	cases := []struct {
		rhs  string
		want ir.Op
	}{
		{"a[i] > m ? a[i] : m", ir.OpMax},
		{"a[i] < m ? a[i] : m", ir.OpMin},
		{"m < a[i] ? a[i] : m", ir.OpMax},
		{"m > a[i] ? a[i] : m", ir.OpMin},
	}
	for _, c := range cases {
		src := `
int a[128];
int f() {
    int m = 0;
    for (int i = 0; i < 128; i++) {
        m = ` + c.rhs + `;
    }
    return m;
}
`
		p := lowerSrc(t, src)
		l := p.Func("f").Loops[0]
		if len(l.Reductions) != 1 || l.Reductions[0].Op != c.want {
			t.Errorf("%q: reductions = %+v, want %s", c.rhs, l.Reductions, c.want)
		}
	}
}

func TestBitwiseReductions(t *testing.T) {
	for _, c := range []struct {
		op   string
		want ir.Op
	}{{"&=", ir.OpAnd}, {"|=", ir.OpOr}, {"^=", ir.OpXor}, {"*=", ir.OpMul}} {
		src := `
int a[64];
int f() {
    int acc = 1;
    for (int i = 0; i < 64; i++) {
        acc ` + c.op + ` a[i];
    }
    return acc;
}
`
		p := lowerSrc(t, src)
		l := p.Func("f").Loops[0]
		if len(l.Reductions) != 1 || l.Reductions[0].Op != c.want {
			t.Errorf("%s: reductions = %+v", c.op, l.Reductions)
		}
	}
}

func TestCompoundStoreLoadsOldValue(t *testing.T) {
	p := lowerSrc(t, `
int a[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] *= 3;
    }
}
`)
	l := p.Func("f").Loops[0]
	if l.LoadCount() != 1 || l.StoreCount() != 1 {
		t.Fatalf("compound store loads/stores = %d/%d, want 1/1", l.LoadCount(), l.StoreCount())
	}
	hasMul := false
	for _, in := range l.Body {
		if in.Op == ir.OpMul {
			hasMul = true
		}
	}
	if !hasMul {
		t.Error("compound *= lost its multiply")
	}
}

func TestBuiltinCalls(t *testing.T) {
	p := lowerSrc(t, `
double a[64];
double b[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = sqrt(b[i]) + fabs(b[i]) + max(1, 2) + min(3, 4);
    }
}
`)
	l := p.Func("f").Loops[0]
	if l.HasCall {
		t.Fatal("builtins must not mark the loop as calling")
	}
	seen := map[ir.Op]bool{}
	for _, in := range l.Body {
		seen[in.Op] = true
	}
	for _, want := range []ir.Op{ir.OpDiv /* sqrt proxy */, ir.OpAbs, ir.OpMax, ir.OpMin} {
		if !seen[want] {
			t.Errorf("builtin op %s missing from body", want)
		}
	}
}

func TestElseBranchLowering(t *testing.T) {
	p := lowerSrc(t, `
int a[128];
int b[128];
void f() {
    for (int i = 0; i < 128; i++) {
        if (a[i] > 0) {
            b[i] = 1;
        } else {
            b[i] = 2;
        }
    }
}
`)
	l := p.Func("f").Loops[0]
	if !l.HasIf {
		t.Fatal("HasIf not set")
	}
	if l.StoreCount() != 2 {
		t.Fatalf("stores = %d, want 2 (both branches)", l.StoreCount())
	}
	for _, a := range l.Accesses {
		if a.Kind == ir.Store && !a.Predicated {
			t.Error("branch store not predicated")
		}
	}
}

func TestDivisionIndexIsNonAffine(t *testing.T) {
	p := lowerSrc(t, `
int a[256];
int b[256];
void f() {
    for (int i = 0; i < 256; i++) {
        a[i] = b[i / 2];
    }
}
`)
	l := p.Func("f").Loops[0]
	for _, acc := range l.Accesses {
		if acc.Array == "b" && acc.Affine {
			t.Error("b[i/2] must be non-affine (not linear in i)")
		}
	}
}

func TestRuntimeScalarOffsetKeepsStride(t *testing.T) {
	// a[i + off] with runtime off: stride known, alignment not.
	p := lowerSrc(t, `
int a[4096];
int b[4096];
void f(int off) {
    for (int i = 0; i < 1024; i++) {
        a[i] = b[i + off];
    }
}
`)
	l := p.Func("f").Loops[0]
	for _, acc := range l.Accesses {
		if acc.Array != "b" {
			continue
		}
		if !acc.Affine {
			t.Fatal("b[i+off] should stay affine with unknown offset")
		}
		if acc.StrideFor(l.Label) != 1 {
			t.Fatalf("stride = %d, want 1", acc.StrideFor(l.Label))
		}
		if acc.Aligned {
			t.Error("unknown offset cannot be statically aligned")
		}
	}
}

func TestIncDecInsideBody(t *testing.T) {
	p := lowerSrc(t, `
int f() {
    int count = 0;
    for (int i = 0; i < 32; i++) {
        count++;
    }
    return count;
}
`)
	l := p.Func("f").Loops[0]
	if len(l.Body) == 0 {
		t.Fatal("count++ produced no ops")
	}
}

func TestDefaultTripFallback(t *testing.T) {
	prog := lang.MustParse(`
int a[8192];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = i;
    }
}
`)
	out, err := Program(prog, Options{DefaultTrip: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Func("f").Loops[0].Trip; got != 99 {
		t.Fatalf("default trip = %d, want 99", got)
	}
	// Zero default gets the package fallback.
	out2, err := Program(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := out2.Func("f").Loops[0].Trip; got != 256 {
		t.Fatalf("fallback trip = %d, want 256", got)
	}
}

func TestExpandedReductionForms(t *testing.T) {
	for _, rhs := range []string{"s + a[i]", "a[i] + s", "s - a[i]", "s * a[i]"} {
		src := `
int a[64];
int f() {
    int s = 1;
    for (int i = 0; i < 64; i++) {
        s = ` + rhs + `;
    }
    return s;
}
`
		p := lowerSrc(t, src)
		l := p.Func("f").Loops[0]
		if len(l.Reductions) != 1 {
			t.Errorf("%q: reductions = %+v", rhs, l.Reductions)
		}
	}
}

func TestLogicalOperatorsLower(t *testing.T) {
	p := lowerSrc(t, `
int a[128];
int b[128];
void f() {
    for (int i = 0; i < 128; i++) {
        if (a[i] > 0 && b[i] < 10 || a[i] == 5) {
            a[i] = 0;
        }
    }
}
`)
	l := p.Func("f").Loops[0]
	cmp := 0
	for _, in := range l.Body {
		if in.Op == ir.OpCmp {
			cmp++
		}
	}
	if cmp < 3 {
		t.Errorf("comparisons = %d, want >= 3", cmp)
	}
}
