package lower

import (
	"testing"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
)

func lowerSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out, err := Program(prog, DefaultOptions())
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return out
}

func TestDotProductLowering(t *testing.T) {
	p := lowerSrc(t, `
int vec[512];
int example1() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`)
	fn := p.Func("example1")
	if fn == nil || len(fn.Loops) != 1 {
		t.Fatalf("funcs/loops missing: %+v", p.Funcs)
	}
	l := fn.Loops[0]
	if l.Trip != 512 || !l.TripKnown {
		t.Errorf("trip = %d known=%v, want 512 known", l.Trip, l.TripKnown)
	}
	if len(l.Reductions) != 1 || l.Reductions[0].Op != ir.OpAdd {
		t.Fatalf("reductions = %+v", l.Reductions)
	}
	if got := l.LoadCount(); got != 2 {
		t.Errorf("loads = %d, want 2", got)
	}
	if got := l.StoreCount(); got != 0 {
		t.Errorf("stores = %d, want 0 (reduction, not store)", got)
	}
	// mul + reduction add.
	hasMul := false
	for _, in := range l.Body {
		if in.Op == ir.OpMul {
			hasMul = true
		}
	}
	if !hasMul {
		t.Errorf("no mul in body: %v", l.Body)
	}
}

func TestTripCountForms(t *testing.T) {
	cases := []struct {
		src  string
		trip int64
	}{
		{"void f() { for (int i = 0; i < 100; i++) {} }", 100},
		{"void f() { for (int i = 0; i <= 100; i++) {} }", 101},
		{"void f() { for (int i = 0; i < 100; i += 2) {} }", 50},
		{"void f() { for (int i = 0; i < 101; i += 2) {} }", 51},
		{"void f() { for (int i = 10; i < 100; i++) {} }", 90},
		{"void f() { for (int i = 99; i >= 0; i--) {} }", 100},
		{"void f() { for (int i = 100; i > 0; i -= 4) {} }", 25},
		{"int N = 64;\nvoid f() { for (int i = 0; i < N * 2; i++) {} }", 128},
		{"int N = 64;\nvoid f() { for (int i = 0; i < N / 2 - 1; i++) {} }", 31},
		{"void f() { for (int i = 0; i < 512; i = i + 8) {} }", 64},
	}
	for _, c := range cases {
		p := lowerSrc(t, c.src)
		l := p.Func("f").Loops[0]
		if !l.TripKnown {
			t.Errorf("%q: trip not known", c.src)
		}
		if l.Trip != c.trip {
			t.Errorf("%q: trip = %d, want %d", c.src, l.Trip, c.trip)
		}
	}
}

func TestRuntimeBound(t *testing.T) {
	p, err := lang.Parse(`
int a[4096];
void f(int n) {
    for (int i = 0; i < n; i++) {
        a[i] = i;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Program(p, Options{ParamValues: map[string]int64{"n": 777}, DefaultTrip: 64})
	if err != nil {
		t.Fatal(err)
	}
	l := out.Func("f").Loops[0]
	if l.TripKnown {
		t.Error("runtime bound marked as known")
	}
	if l.Trip != 777 {
		t.Errorf("trip = %d, want 777 from ParamValues", l.Trip)
	}
}

func TestAffineStrides(t *testing.T) {
	p := lowerSrc(t, `
int a[512];
int b[512];
int c[512];
int d[512];
void f() {
    for (int i = 0; i < 256; i++) {
        a[i] = b[2 * i + 1] * c[2 * i] - d[i + 3];
    }
}
`)
	l := p.Func("f").Loops[0]
	label := l.Label
	byArray := map[string]*ir.Access{}
	for _, a := range l.Accesses {
		byArray[a.Array] = a
	}
	if got := byArray["b"].StrideFor(label); got != 2 {
		t.Errorf("b stride = %d, want 2", got)
	}
	if got := byArray["b"].Offset; got != 1 {
		t.Errorf("b offset = %d, want 1", got)
	}
	if got := byArray["c"].StrideFor(label); got != 2 {
		t.Errorf("c stride = %d, want 2", got)
	}
	if got := byArray["d"].Offset; got != 3 {
		t.Errorf("d offset = %d, want 3", got)
	}
	if byArray["a"].Kind != ir.Store {
		t.Errorf("a should be a store")
	}
	if !byArray["a"].Aligned {
		t.Errorf("a[i] should be aligned")
	}
	if byArray["d"].Aligned {
		t.Errorf("d[i+3] should not be statically aligned")
	}
}

func Test2DFlattening(t *testing.T) {
	p := lowerSrc(t, `
float A[64][32];
void f() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 32; j++) {
            A[i][j] = 1.0;
        }
    }
}
`)
	outer := p.Func("f").Loops[0]
	if len(outer.Children) != 1 {
		t.Fatalf("children = %d", len(outer.Children))
	}
	inner := outer.Children[0]
	acc := inner.Accesses[0]
	if got := acc.StrideFor(outer.Label); got != 32 {
		t.Errorf("stride over outer = %d, want 32 (row length)", got)
	}
	if got := acc.StrideFor(inner.Label); got != 1 {
		t.Errorf("stride over inner = %d, want 1", got)
	}
}

func TestMatmulReductionAtDepth(t *testing.T) {
	p := lowerSrc(t, `
float A[64][64];
float B[64][64];
float C[64][64];
void matmul(float alpha) {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            float sum = 0;
            for (int k = 0; k < 64; k++) {
                sum += alpha * A[i][k] * B[k][j];
            }
            C[i][j] = sum;
        }
    }
}
`)
	nest := p.Func("matmul").Loops[0]
	inner := nest.InnermostLoops()
	if len(inner) != 1 {
		t.Fatalf("innermost = %d", len(inner))
	}
	k := inner[0]
	if len(k.Reductions) != 1 || k.Reductions[0].Op != ir.OpAdd || k.Reductions[0].Type != lang.TypeFloat {
		t.Fatalf("reductions = %+v", k.Reductions)
	}
	// B[k][j] has stride 64 in k (gather-class access).
	var bAcc *ir.Access
	for _, a := range k.Accesses {
		if a.Array == "B" {
			bAcc = a
		}
	}
	if bAcc == nil || bAcc.StrideFor(k.Label) != 64 {
		t.Fatalf("B access = %+v", bAcc)
	}
	// C store belongs to the middle loop, not the innermost.
	if k.StoreCount() != 0 {
		t.Errorf("innermost has %d stores, want 0", k.StoreCount())
	}
}

func TestPredicationAndSelect(t *testing.T) {
	p := lowerSrc(t, `
int a[256];
int b[256];
void f() {
    for (int i = 0; i < 256; i++) {
        if (a[i] > 10) {
            b[i] = a[i];
        }
    }
}
`)
	l := p.Func("f").Loops[0]
	if !l.HasIf {
		t.Error("HasIf not set")
	}
	predStores := 0
	for _, a := range l.Accesses {
		if a.Kind == ir.Store && a.Predicated {
			predStores++
		}
	}
	if predStores != 1 {
		t.Errorf("predicated stores = %d, want 1", predStores)
	}
}

func TestTernaryLowersToSelect(t *testing.T) {
	p := lowerSrc(t, `
int a[256];
int b[256];
int MAX = 255;
void f() {
    for (int i = 0; i < 256; i++) {
        int j = a[i];
        b[i] = j > MAX ? MAX : 0;
    }
}
`)
	l := p.Func("f").Loops[0]
	hasSelect, hasCmp := false, false
	for _, in := range l.Body {
		if in.Op == ir.OpSelect {
			hasSelect = true
		}
		if in.Op == ir.OpCmp {
			hasCmp = true
		}
	}
	if !hasSelect || !hasCmp {
		t.Errorf("body = %v, want cmp+select", l.Body)
	}
	if l.HasIf {
		t.Error("ternary should not set HasIf (if-conversion free)")
	}
}

func TestConversionLowering(t *testing.T) {
	p := lowerSrc(t, `
short sa[128];
int ia[128];
void f() {
    for (int i = 0; i < 128; i++) {
        ia[i] = (int) sa[i];
    }
}
`)
	l := p.Func("f").Loops[0]
	hasConv := false
	for _, in := range l.Body {
		if in.Op == ir.OpConvert && in.From == lang.TypeShort && in.Type == lang.TypeInt {
			hasConv = true
		}
	}
	if !hasConv {
		t.Errorf("no short->int convert in body: %v", l.Body)
	}
}

func TestNonAffineIndexIsGatherClass(t *testing.T) {
	p := lowerSrc(t, `
int idx[256];
int data[4096];
int out[256];
void f() {
    for (int i = 0; i < 256; i++) {
        out[i] = data[idx[i]];
    }
}
`)
	l := p.Func("f").Loops[0]
	var dataAcc *ir.Access
	for _, a := range l.Accesses {
		if a.Array == "data" {
			dataAcc = a
		}
	}
	if dataAcc == nil {
		t.Fatal("no access to data")
	}
	if dataAcc.Affine {
		t.Error("data[idx[i]] marked affine")
	}
}

func TestOpaqueCallBlocksVectorization(t *testing.T) {
	p := lowerSrc(t, `
int a[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = helper(i);
    }
}
`)
	l := p.Func("f").Loops[0]
	if !l.HasCall {
		t.Error("HasCall not set for opaque call")
	}
}

func TestScalarOpsOutsideLoops(t *testing.T) {
	p := lowerSrc(t, `
int f(int x) {
    int y = x * 3 + 1;
    int z = y * y;
    for (int i = 0; i < 8; i++) { }
    return z - y;
}
`)
	fn := p.Func("f")
	if fn.ScalarOps < 4 {
		t.Errorf("ScalarOps = %d, want >= 4", fn.ScalarOps)
	}
}

func TestMinMaxReduction(t *testing.T) {
	p := lowerSrc(t, `
int a[512];
int f() {
    int m = 0;
    for (int i = 0; i < 512; i++) {
        m = a[i] > m ? a[i] : m;
    }
    return m;
}
`)
	l := p.Func("f").Loops[0]
	if len(l.Reductions) != 1 || l.Reductions[0].Op != ir.OpMax {
		t.Fatalf("reductions = %+v, want max", l.Reductions)
	}
}

func TestPragmaCarriedToIR(t *testing.T) {
	p := lowerSrc(t, `
int a[128];
void f() {
    #pragma clang loop vectorize_width(16) interleave_count(4)
    for (int i = 0; i < 128; i++) {
        a[i] = i;
    }
}
`)
	l := p.Func("f").Loops[0]
	if l.Pragma == nil || l.Pragma.VF != 16 || l.Pragma.IF != 4 {
		t.Fatalf("pragma = %+v", l.Pragma)
	}
}

func TestStripMinedCopyExample1(t *testing.T) {
	// Example #1 from the paper: manual stride-2 unroll of conversions.
	p := lowerSrc(t, `
int N = 1024;
int assign1[1024];
int assign2[1024];
int assign3[1024];
short short_a[1024];
short short_b[1024];
short short_c[1024];
void f() {
    for (int i = 0; i < N - 1; i += 2) {
        assign1[i] = (int) short_a[i];
        assign1[i + 1] = (int) short_a[i + 1];
        assign2[i] = (int) short_b[i];
        assign2[i + 1] = (int) short_b[i + 1];
        assign3[i] = (int) short_c[i];
        assign3[i + 1] = (int) short_c[i + 1];
    }
}
`)
	l := p.Func("f").Loops[0]
	if l.Trip != 512 {
		t.Errorf("trip = %d, want 512 ((1023)/2 rounded up)", l.Trip)
	}
	if l.StoreCount() != 6 || l.LoadCount() != 6 {
		t.Errorf("stores/loads = %d/%d, want 6/6", l.StoreCount(), l.LoadCount())
	}
	conv := 0
	for _, in := range l.Body {
		if in.Op == ir.OpConvert {
			conv++
		}
	}
	if conv != 6 {
		t.Errorf("converts = %d, want 6", conv)
	}
}

func TestReverseIterationStride(t *testing.T) {
	p := lowerSrc(t, `
int a[256];
int b[256];
void f() {
    for (int i = 255; i >= 0; i--) {
        a[i] = b[255 - i];
    }
}
`)
	l := p.Func("f").Loops[0]
	if l.Trip != 256 {
		t.Fatalf("trip = %d", l.Trip)
	}
	// Accesses are normalized to the iteration space [0, trip): iteration k
	// has i = 255 - k, so a[i] is the reversed stream (stride -1 from offset
	// 255) and b[255 - i] the forward unit stream (stride +1 from offset 0).
	var aAcc, bAcc *ir.Access
	for _, acc := range l.Accesses {
		switch acc.Array {
		case "a":
			aAcc = acc
		case "b":
			bAcc = acc
		}
	}
	if bAcc.StrideFor(l.Label) != 1 || bAcc.Offset != 0 {
		t.Errorf("b stride/offset = %d/%d, want 1/0", bAcc.StrideFor(l.Label), bAcc.Offset)
	}
	if aAcc.StrideFor(l.Label) != -1 || aAcc.Offset != 255 {
		t.Errorf("a stride/offset = %d/%d, want -1/255", aAcc.StrideFor(l.Label), aAcc.Offset)
	}
}

func TestLoopInvariantAccess(t *testing.T) {
	p := lowerSrc(t, `
int a[64];
int b[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = b[5];
    }
}
`)
	l := p.Func("f").Loops[0]
	for _, acc := range l.Accesses {
		if acc.Array == "b" && !acc.InvariantIn(l.Label) {
			t.Errorf("b[5] should be invariant in the loop")
		}
	}
}
