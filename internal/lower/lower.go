// Package lower translates the mini-C AST into the loop-nest IR.
//
// The pass performs the analyses a vectorizing compiler front end would:
//
//   - trip-count evaluation with constant folding through global constants
//     (loops with runtime bounds are marked TripKnown=false and get their
//     simulated trip count from Options);
//   - affine analysis of array subscripts, producing per-loop strides used by
//     dependence analysis and the cache model;
//   - reduction recognition (sum += ..., prod *= ..., min/max patterns);
//   - predication of statements under if and switch, and detection of opaque
//     calls and early exits (break) that block vectorization;
//   - struct field accesses lowered to per-field storage planes ("base.field"
//     synthetic arrays), and non-canonical loops lowered conservatively as
//     Irregular rather than rejected.
package lower

import (
	"fmt"

	"neurovec/internal/ir"
	"neurovec/internal/lang"
)

// Options controls lowering.
type Options struct {
	// ParamValues supplies runtime values for function parameters that are
	// used as loop bounds (the "unknown loop bounds" benchmarks). A loop
	// bound that resolves to a parameter uses this value for simulation but
	// stays TripKnown=false for the compiler's cost model.
	ParamValues map[string]int64
	// DefaultTrip is used when a runtime bound has no entry in ParamValues.
	DefaultTrip int64
	// Facts optionally supplies per-loop proofs from semantic analysis
	// (sema.Facts implements this). A proven trip count is copied onto
	// ir.Loop.ProvenTrip, where the dependence analysis may rely on it;
	// without facts ProvenTrip stays 0 and analysis is fully conservative.
	Facts LoopFacts
}

// LoopFacts is the hook through which frontend proofs reach lowering without
// this package depending on the sema package.
type LoopFacts interface {
	// ProvenTrip returns the proven constant trip count for the loop with
	// the given parser label, if one was established.
	ProvenTrip(label string) (int64, bool)
}

// DefaultOptions returns the options used throughout the evaluation:
// unspecified runtime bounds simulate 256 iterations.
func DefaultOptions() Options { return Options{DefaultTrip: 256} }

// Error is a lowering error.
type Error struct {
	Func string
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("lower %s: %s", e.Func, e.Msg) }

// Program lowers a parsed program.
func Program(p *lang.Program, opts Options) (*ir.Program, error) {
	if opts.DefaultTrip <= 0 {
		opts.DefaultTrip = 256
	}
	out := &ir.Program{Source: p}
	env := newEnv(p, opts)
	for _, f := range p.Funcs {
		fn, err := env.lowerFunc(f)
		if err != nil {
			return nil, err
		}
		out.Funcs = append(out.Funcs, fn)
	}
	return out, nil
}

// MustProgram lowers with default options and panics on error; for tests and
// generated sources.
func MustProgram(p *lang.Program) *ir.Program {
	out, err := Program(p, DefaultOptions())
	if err != nil {
		panic(err)
	}
	return out
}

// env carries symbol and constant information during lowering.
type env struct {
	opts    Options
	types   map[string]lang.Type
	structs map[string]*lang.StructDecl
	consts  map[string]int64 // globals and locals with constant integer inits
	// declDepth records the loop depth at which each scalar was declared:
	// -1 for globals/params/function-scope locals, otherwise the depth of
	// the enclosing loop. Used for reduction recognition.
	declDepth map[string]int
	// loopVars maps in-scope induction variable names to loop labels.
	loopVars map[string]string

	fn    *lang.FuncDecl
	funcN string
}

func newEnv(p *lang.Program, opts Options) *env {
	e := &env{
		opts:      opts,
		types:     make(map[string]lang.Type),
		structs:   make(map[string]*lang.StructDecl),
		consts:    make(map[string]int64),
		declDepth: make(map[string]int),
		loopVars:  make(map[string]string),
	}
	for _, sd := range p.Structs {
		e.structs[sd.Name] = sd
	}
	for _, g := range p.Globals {
		e.types[g.Name] = g.Type
		e.declDepth[g.Name] = -1
		if !g.Type.IsArray() && g.Init != nil {
			if v, ok := e.evalConst(g.Init); ok {
				e.consts[g.Name] = v
			}
		}
	}
	return e
}

func (e *env) errorf(format string, args ...any) error {
	return &Error{Func: e.funcN, Msg: fmt.Sprintf(format, args...)}
}

func (e *env) lowerFunc(f *lang.FuncDecl) (*ir.Func, error) {
	e.fn = f
	e.funcN = f.Name
	// Parameter scope.
	for _, p := range f.Params {
		e.types[p.Name] = p.Type
		e.declDepth[p.Name] = -1
	}
	fn := &ir.Func{Name: f.Name}
	ctx := &loopCtx{depth: -1}
	if err := e.lowerBlock(f.Body, ctx, fn, nil); err != nil {
		return nil, err
	}
	fn.ScalarOps = ctx.scalarOps
	return fn, nil
}

// loopCtx accumulates lowering results for one loop body (or, at depth -1,
// for the function's straight-line code).
type loopCtx struct {
	depth      int
	loop       *ir.Loop // nil at function level
	scalarOps  int      // ops outside loops (function level only)
	predicated bool     // inside an if within the current loop body
}

// emit records a compute instruction in the current context.
func (e *env) emit(ctx *loopCtx, in ir.Instr) {
	in.Predicated = ctx.predicated
	if ctx.loop != nil {
		ctx.loop.Body = append(ctx.loop.Body, in)
	} else {
		ctx.scalarOps++
	}
}

// emitAccess records a memory access in the current context.
func (e *env) emitAccess(ctx *loopCtx, a *ir.Access) {
	a.Predicated = ctx.predicated
	if ctx.loop != nil {
		ctx.loop.Accesses = append(ctx.loop.Accesses, a)
	} else {
		// Straight-line access: charge as a scalar op.
		ctx.scalarOps++
	}
}

func (e *env) lowerBlock(b *lang.BlockStmt, ctx *loopCtx, fn *ir.Func, parent *ir.Loop) error {
	for _, s := range b.Stmts {
		if err := e.lowerStmt(s, ctx, fn, parent); err != nil {
			return err
		}
	}
	return nil
}

func (e *env) lowerStmt(s lang.Stmt, ctx *loopCtx, fn *ir.Func, parent *ir.Loop) error {
	switch st := s.(type) {
	case *lang.DeclStmt:
		e.types[st.Name] = st.Type
		e.declDepth[st.Name] = ctx.depth
		if st.Init != nil {
			if v, ok := e.evalConst(st.Init); ok && !st.Type.IsArray() {
				e.consts[st.Name] = v
			} else {
				delete(e.consts, st.Name)
			}
			if _, err := e.lowerExpr(st.Init, ctx); err != nil {
				return err
			}
			e.emit(ctx, ir.Instr{Op: ir.OpCopy, Type: st.Type.Scalar})
		}
		return nil

	case *lang.AssignStmt:
		return e.lowerAssign(st, ctx)

	case *lang.IncDecStmt:
		if _, err := e.lowerExpr(st.X, ctx); err != nil {
			return err
		}
		e.emit(ctx, ir.Instr{Op: ir.OpAdd, Type: lang.TypeInt})
		return nil

	case *lang.ExprStmt:
		_, err := e.lowerExpr(st.X, ctx)
		return err

	case *lang.ReturnStmt:
		if st.Value != nil {
			if _, err := e.lowerExpr(st.Value, ctx); err != nil {
				return err
			}
		}
		return nil

	case *lang.BlockStmt:
		return e.lowerBlock(st, ctx, fn, parent)

	case *lang.IfStmt:
		t, err := e.lowerExpr(st.Cond, ctx)
		if err != nil {
			return err
		}
		// The comparison itself (if the condition isn't already one).
		if !isComparison(st.Cond) {
			e.emit(ctx, ir.Instr{Op: ir.OpCmp, Type: t})
		}
		if ctx.loop != nil {
			ctx.loop.HasIf = true
		}
		saved := ctx.predicated
		ctx.predicated = true
		if err := e.lowerBlock(st.Then, ctx, fn, parent); err != nil {
			return err
		}
		if st.Else != nil {
			if err := e.lowerStmt(st.Else, ctx, fn, parent); err != nil {
				return err
			}
		}
		ctx.predicated = saved
		// Blend of the two sides.
		e.emit(ctx, ir.Instr{Op: ir.OpSelect, Type: t})
		return nil

	case *lang.ForStmt:
		return e.lowerFor(st, ctx, fn, parent)

	case *lang.BreakStmt:
		// A break reaching here binds to the innermost enclosing loop (arm
		// terminators of switches were folded away by the parser).
		if ctx.loop != nil {
			ctx.loop.HasEarlyExit = true
		}
		return nil

	case *lang.SwitchStmt:
		return e.lowerSwitch(st, ctx, fn, parent)
	}
	return e.errorf("unhandled statement %T", s)
}

// lowerSwitch lowers a switch as a predicated cascade: one comparison of the
// tag per case arm, each arm's work under a mask, and a final blend — the
// same shape an if/else chain lowers to, so the vectorizer's predication
// costs apply unchanged.
func (e *env) lowerSwitch(st *lang.SwitchStmt, ctx *loopCtx, fn *ir.Func, parent *ir.Loop) error {
	t, err := e.lowerExpr(st.Tag, ctx)
	if err != nil {
		return err
	}
	if ctx.loop != nil {
		ctx.loop.HasIf = true
	}
	saved := ctx.predicated
	for _, cc := range st.Cases {
		if cc.Value != nil {
			e.emit(ctx, ir.Instr{Op: ir.OpCmp, Type: t})
		}
		ctx.predicated = true
		for _, s := range cc.Body {
			if err := e.lowerStmt(s, ctx, fn, parent); err != nil {
				ctx.predicated = saved
				return err
			}
		}
		ctx.predicated = saved
	}
	e.emit(ctx, ir.Instr{Op: ir.OpSelect, Type: t})
	return nil
}

func (e *env) lowerFor(st *lang.ForStmt, ctx *loopCtx, fn *ir.Func, parent *ir.Loop) error {
	loop := &ir.Loop{
		Label:  st.Label,
		Depth:  ctx.depth + 1,
		Step:   1,
		Pragma: st.Pragma,
	}

	iv, lo, loKnown := e.analyzeInit(st.Init)
	var step int64
	var down, stepOK bool
	if iv != "" {
		step, down, stepOK = e.analyzeStep(st.Post, iv)
	}
	if iv == "" || !stepOK {
		// Non-canonical induction (unknown init clause, or a post clause that
		// is not a constant-stride update, e.g. i *= 2). Lower conservatively:
		// mark the loop Irregular, simulate it with the default trip, and keep
		// the induction variable OUT of loopVars so body subscripts that read
		// it become runtime-scalar (inexact) offsets rather than bogus
		// loop-invariant addresses. Dependence analysis never vectorizes
		// Irregular loops.
		loop.Irregular = true
		loop.TripKnown = false
		loop.Trip = e.opts.DefaultTrip
		loop.Step = 1
		if iv != "" {
			loop.IndexVar = iv
			e.declDepth[iv] = loop.Depth
			e.types[iv] = lang.Type{Scalar: lang.TypeInt}
			delete(e.consts, iv)
		}
		inner := &loopCtx{depth: loop.Depth, loop: loop}
		if err := e.lowerBlock(st.Body, inner, fn, loop); err != nil {
			return err
		}
		if parent != nil {
			parent.Children = append(parent.Children, loop)
		} else {
			fn.Loops = append(fn.Loops, loop)
		}
		return nil
	}
	loop.IndexVar = iv
	e.declDepth[iv] = loop.Depth
	e.types[iv] = lang.Type{Scalar: lang.TypeInt}
	delete(e.consts, iv)
	loop.Step = step

	hi, hiKnown, inclusive, boundParam := e.analyzeCond(st.Cond, iv, down)

	switch {
	case loKnown && hiKnown:
		loop.TripKnown = true
		loop.Trip = tripCount(lo, hi, step, down, inclusive)
	default:
		loop.TripKnown = false
		n := e.opts.DefaultTrip
		if boundParam != "" {
			if v, okp := e.opts.ParamValues[boundParam]; okp {
				n = v
			}
		}
		loop.Trip = n
	}
	if loop.Trip < 0 {
		loop.Trip = 0
	}
	if e.opts.Facts != nil {
		if proven, ok := e.opts.Facts.ProvenTrip(loop.Label); ok {
			// Trust the proof only when it agrees with our own constant
			// analysis (or when we had none): a disagreement means the fact
			// table belongs to a different program revision.
			if !loop.TripKnown || loop.Trip == proven {
				loop.ProvenTrip = proven
			}
		}
	}

	// Enter loop scope.
	prevLabel, hadPrev := e.loopVars[iv]
	e.loopVars[iv] = loop.Label
	inner := &loopCtx{depth: loop.Depth, loop: loop}
	if err := e.lowerBlock(st.Body, inner, fn, loop); err != nil {
		return err
	}
	if hadPrev {
		e.loopVars[iv] = prevLabel
	} else {
		delete(e.loopVars, iv)
	}

	// Normalize every access in the subtree to this loop's iteration space
	// [0, trip): with iv = lo ± step*k, a subscript coefficient c over iv
	// advances c*step (negated for downward loops) per iteration and
	// contributes c*lo to the constant offset. The dependence analysis
	// reasons over iterations, not induction-variable values, so without
	// this rewrite its distance and range proofs would be wrong for loops
	// with a non-zero start, a non-unit step, or a downward direction.
	loop.Walk(func(x *ir.Loop) {
		for _, a := range x.Accesses {
			c, refs := a.Strides[loop.Label]
			if !refs || c == 0 {
				continue
			}
			if loKnown {
				a.Offset += c * lo
			} else {
				// Unknown start: the constant part of the address is
				// incomplete, which disables offset-based dependence proofs.
				a.ExactOffset = false
			}
			eff := c * step
			if down {
				eff = -eff
			}
			a.Strides[loop.Label] = eff
			a.Aligned = a.ExactOffset && a.Offset == 0
		}
	})

	if parent != nil {
		parent.Children = append(parent.Children, loop)
	} else {
		fn.Loops = append(fn.Loops, loop)
	}
	return nil
}

// analyzeInit extracts the induction variable and its constant start value.
func (e *env) analyzeInit(init lang.Stmt) (iv string, lo int64, known bool) {
	switch in := init.(type) {
	case *lang.DeclStmt:
		if in.Init == nil {
			return in.Name, 0, false
		}
		v, ok := e.evalConst(in.Init)
		return in.Name, v, ok
	case *lang.AssignStmt:
		id, ok := in.LHS.(*lang.Ident)
		if !ok || in.Op != lang.Assign {
			return "", 0, false
		}
		v, okc := e.evalConst(in.RHS)
		return id.Name, v, okc
	}
	return "", 0, false
}

// analyzeStep extracts the loop step from the post clause.
func (e *env) analyzeStep(post lang.Stmt, iv string) (step int64, down, ok bool) {
	switch po := post.(type) {
	case *lang.IncDecStmt:
		if id, okx := po.X.(*lang.Ident); okx && id.Name == iv {
			return 1, po.Dec, true
		}
	case *lang.AssignStmt:
		id, okx := po.LHS.(*lang.Ident)
		if !okx || id.Name != iv {
			return 0, false, false
		}
		switch po.Op {
		case lang.PlusAssign:
			if v, okc := e.evalConst(po.RHS); okc && v > 0 {
				return v, false, true
			}
		case lang.MinusAssign:
			if v, okc := e.evalConst(po.RHS); okc && v > 0 {
				return v, true, true
			}
		case lang.Assign:
			// i = i + c / i = i - c
			if be, okb := po.RHS.(*lang.BinaryExpr); okb {
				if x, okx2 := be.X.(*lang.Ident); okx2 && x.Name == iv {
					if v, okc := e.evalConst(be.Y); okc && v > 0 {
						switch be.Op {
						case lang.Plus:
							return v, false, true
						case lang.Minus:
							return v, true, true
						}
					}
				}
			}
		}
	}
	return 0, false, false
}

// analyzeCond extracts the loop bound. boundParam names the identifier the
// bound reduces to when it is a single runtime variable (used to look up a
// simulated value).
func (e *env) analyzeCond(cond lang.Expr, iv string, down bool) (hi int64, known, inclusive bool, boundParam string) {
	be, ok := cond.(*lang.BinaryExpr)
	if !ok {
		return 0, false, false, ""
	}
	lhsIsIV := false
	if id, okx := be.X.(*lang.Ident); okx && id.Name == iv {
		lhsIsIV = true
	}
	var bound lang.Expr
	op := be.Op
	if lhsIsIV {
		bound = be.Y
	} else if id, oky := be.Y.(*lang.Ident); oky && id.Name == iv {
		bound = be.X
		// Flip the comparison: N > i  ==  i < N.
		switch op {
		case lang.Gt:
			op = lang.Lt
		case lang.Ge:
			op = lang.Le
		case lang.Lt:
			op = lang.Gt
		case lang.Le:
			op = lang.Ge
		}
	} else {
		return 0, false, false, ""
	}

	switch {
	case !down && (op == lang.Lt || op == lang.Le):
		inclusive = op == lang.Le
	case down && (op == lang.Gt || op == lang.Ge):
		inclusive = op == lang.Ge
	case op == lang.NotEq:
		inclusive = false
	default:
		return 0, false, false, ""
	}
	if v, okc := e.evalConst(bound); okc {
		return v, true, inclusive, ""
	}
	if id, okid := bound.(*lang.Ident); okid {
		return 0, false, inclusive, id.Name
	}
	return 0, false, inclusive, ""
}

func tripCount(lo, hi, step int64, down, inclusive bool) int64 {
	if step <= 0 {
		step = 1
	}
	var span int64
	if down {
		span = lo - hi
	} else {
		span = hi - lo
	}
	if inclusive {
		span++
	}
	if span <= 0 {
		return 0
	}
	return (span + step - 1) / step
}

// lowerAssign handles assignments, including reduction recognition.
func (e *env) lowerAssign(st *lang.AssignStmt, ctx *loopCtx) error {
	// Reduction pattern: scalar declared outside the current loop, updated
	// with a compound op (sum += x) or the expanded form (sum = sum + x).
	if id, ok := st.LHS.(*lang.Ident); ok && ctx.loop != nil && !ctx.predicated {
		if depth, declared := e.declDepth[id.Name]; declared && depth < ctx.depth {
			if redOp, rhs, isRed := e.reductionOf(st, id.Name); isRed {
				t := e.typeOf(st.LHS)
				if _, err := e.lowerExpr(rhs, ctx); err != nil {
					return err
				}
				ctx.loop.Reductions = append(ctx.loop.Reductions, ir.Reduction{
					Var: id.Name, Op: redOp, Type: t,
				})
				// The combining op executes each iteration.
				e.emit(ctx, ir.Instr{Op: redOp, Type: t})
				delete(e.consts, id.Name)
				return nil
			}
		}
	}

	rhsType, err := e.lowerExpr(st.RHS, ctx)
	if err != nil {
		return err
	}

	switch lhs := st.LHS.(type) {
	case *lang.Ident:
		t := e.typeOf(st.LHS)
		if st.Op != lang.Assign {
			e.emit(ctx, ir.Instr{Op: compoundOp(st.Op), Type: t})
		} else {
			e.emit(ctx, ir.Instr{Op: ir.OpCopy, Type: t})
		}
		if needsConvert(rhsType, t) {
			e.emit(ctx, ir.Instr{Op: ir.OpConvert, Type: t, From: rhsType})
		}
		delete(e.consts, lhs.Name)
		return nil
	case *lang.IndexExpr:
		t := e.typeOf(st.LHS)
		if needsConvert(rhsType, t) {
			e.emit(ctx, ir.Instr{Op: ir.OpConvert, Type: t, From: rhsType})
		}
		if st.Op != lang.Assign {
			// Compound store reads the old value too.
			if err := e.lowerIndexAccess(lhs, ir.Load, ctx); err != nil {
				return err
			}
			e.emit(ctx, ir.Instr{Op: compoundOp(st.Op), Type: t})
		}
		return e.lowerIndexAccess(lhs, ir.Store, ctx)
	case *lang.MemberExpr:
		t := e.typeOf(st.LHS)
		if needsConvert(rhsType, t) {
			e.emit(ctx, ir.Instr{Op: ir.OpConvert, Type: t, From: rhsType})
		}
		if st.Op != lang.Assign {
			if _, err := e.lowerMemberAccess(lhs, ir.Load, ctx); err != nil {
				return err
			}
			e.emit(ctx, ir.Instr{Op: compoundOp(st.Op), Type: t})
		}
		_, err := e.lowerMemberAccess(lhs, ir.Store, ctx)
		return err
	}
	return e.errorf("unsupported assignment target %T", st.LHS)
}

// reductionOf reports whether the assignment is a reduction over variable
// name, returning the reduction op and the non-recurrent operand expression.
func (e *env) reductionOf(st *lang.AssignStmt, name string) (ir.Op, lang.Expr, bool) {
	switch st.Op {
	case lang.PlusAssign:
		return ir.OpAdd, st.RHS, true
	case lang.MinusAssign:
		return ir.OpSub, st.RHS, true
	case lang.StarAssign:
		return ir.OpMul, st.RHS, true
	case lang.AmpAssign:
		return ir.OpAnd, st.RHS, true
	case lang.PipeAssign:
		return ir.OpOr, st.RHS, true
	case lang.CaretAssign:
		return ir.OpXor, st.RHS, true
	case lang.Assign:
		// sum = sum + x / sum = x + sum.
		if be, ok := st.RHS.(*lang.BinaryExpr); ok {
			if id, okx := be.X.(*lang.Ident); okx && id.Name == name {
				switch be.Op {
				case lang.Plus:
					return ir.OpAdd, be.Y, true
				case lang.Minus:
					return ir.OpSub, be.Y, true
				case lang.Star:
					return ir.OpMul, be.Y, true
				}
			}
			if id, oky := be.Y.(*lang.Ident); oky && id.Name == name && be.Op == lang.Plus {
				return ir.OpAdd, be.X, true
			}
		}
		// Min/max reduction: m = x < m ? x : m and variants.
		if ce, ok := st.RHS.(*lang.CondExpr); ok {
			if op, operand, isMM := minMaxReduction(ce, name); isMM {
				return op, operand, true
			}
		}
	}
	return 0, nil, false
}

// minMaxReduction matches the four spellings of the ternary min/max idiom.
func minMaxReduction(ce *lang.CondExpr, name string) (ir.Op, lang.Expr, bool) {
	be, ok := ce.Cond.(*lang.BinaryExpr)
	if !ok {
		return 0, nil, false
	}
	isVar := func(x lang.Expr) bool {
		id, okx := x.(*lang.Ident)
		return okx && id.Name == name
	}
	// m = (x < m) ? x : m  -> min; m = (x > m) ? x : m -> max, plus flips.
	var other lang.Expr
	var lessKeepsOther bool
	switch {
	case isVar(be.Y) && !isVar(be.X):
		other = be.X
		lessKeepsOther = be.Op == lang.Lt || be.Op == lang.Le
	case isVar(be.X) && !isVar(be.Y):
		other = be.Y
		lessKeepsOther = be.Op == lang.Gt || be.Op == lang.Ge
	default:
		return 0, nil, false
	}
	thenIsOther := lang.PrintExpr(ce.Then) == lang.PrintExpr(other)
	elseIsVar := isVar(ce.Else)
	if !thenIsOther || !elseIsVar {
		return 0, nil, false
	}
	if lessKeepsOther {
		return ir.OpMin, other, true
	}
	return ir.OpMax, other, true
}

func compoundOp(k lang.Kind) ir.Op {
	switch k {
	case lang.PlusAssign:
		return ir.OpAdd
	case lang.MinusAssign:
		return ir.OpSub
	case lang.StarAssign:
		return ir.OpMul
	case lang.SlashAssign:
		return ir.OpDiv
	case lang.PercentAssign:
		return ir.OpRem
	case lang.AmpAssign:
		return ir.OpAnd
	case lang.PipeAssign:
		return ir.OpOr
	case lang.CaretAssign:
		return ir.OpXor
	case lang.ShlAssign:
		return ir.OpShl
	case lang.ShrAssign:
		return ir.OpShr
	}
	return ir.OpCopy
}

// lowerExpr lowers an expression for its compute ops and memory accesses,
// returning its type.
func (e *env) lowerExpr(x lang.Expr, ctx *loopCtx) (lang.ScalarType, error) {
	switch ex := x.(type) {
	case *lang.IntLit:
		return lang.TypeInt, nil
	case *lang.FloatLit:
		return lang.TypeDouble, nil
	case *lang.Ident:
		return e.typeOf(ex), nil
	case *lang.BinaryExpr:
		tx, err := e.lowerExpr(ex.X, ctx)
		if err != nil {
			return 0, err
		}
		ty, err := e.lowerExpr(ex.Y, ctx)
		if err != nil {
			return 0, err
		}
		t := promote(tx, ty)
		e.emit(ctx, ir.Instr{Op: binOp(ex.Op), Type: t})
		if isComparisonOp(ex.Op) {
			return lang.TypeInt, nil
		}
		return t, nil
	case *lang.UnaryExpr:
		t, err := e.lowerExpr(ex.X, ctx)
		if err != nil {
			return 0, err
		}
		switch ex.Op {
		case lang.Minus:
			e.emit(ctx, ir.Instr{Op: ir.OpNeg, Type: t})
		case lang.Tilde, lang.Bang:
			e.emit(ctx, ir.Instr{Op: ir.OpNot, Type: t})
		}
		return t, nil
	case *lang.CondExpr:
		tc, err := e.lowerExpr(ex.Cond, ctx)
		if err != nil {
			return 0, err
		}
		if !isComparison(ex.Cond) {
			e.emit(ctx, ir.Instr{Op: ir.OpCmp, Type: tc})
		}
		t1, err := e.lowerExpr(ex.Then, ctx)
		if err != nil {
			return 0, err
		}
		t2, err := e.lowerExpr(ex.Else, ctx)
		if err != nil {
			return 0, err
		}
		t := promote(t1, t2)
		e.emit(ctx, ir.Instr{Op: ir.OpSelect, Type: t})
		return t, nil
	case *lang.CastExpr:
		from, err := e.lowerExpr(ex.X, ctx)
		if err != nil {
			return 0, err
		}
		if needsConvert(from, ex.To) {
			e.emit(ctx, ir.Instr{Op: ir.OpConvert, Type: ex.To, From: from})
		}
		return ex.To, nil
	case *lang.IndexExpr:
		if err := e.lowerIndexAccess(ex, ir.Load, ctx); err != nil {
			return 0, err
		}
		return e.typeOf(ex), nil
	case *lang.MemberExpr:
		return e.lowerMemberAccess(ex, ir.Load, ctx)
	case *lang.CallExpr:
		for _, a := range ex.Args {
			if _, err := e.lowerExpr(a, ctx); err != nil {
				return 0, err
			}
		}
		switch ex.Fun {
		case "min":
			e.emit(ctx, ir.Instr{Op: ir.OpMin, Type: lang.TypeInt})
			return lang.TypeInt, nil
		case "max":
			e.emit(ctx, ir.Instr{Op: ir.OpMax, Type: lang.TypeInt})
			return lang.TypeInt, nil
		case "abs", "fabs", "fabsf":
			e.emit(ctx, ir.Instr{Op: ir.OpAbs, Type: lang.TypeDouble})
			return lang.TypeDouble, nil
		case "sqrt", "sqrtf":
			// Square root sits in the same latency/throughput class as
			// division in the machine model.
			e.emit(ctx, ir.Instr{Op: ir.OpDiv, Type: lang.TypeDouble})
			return lang.TypeDouble, nil
		default:
			e.emit(ctx, ir.Instr{Op: ir.OpCall, Type: lang.TypeInt})
			if ctx.loop != nil {
				ctx.loop.HasCall = true
			}
			return lang.TypeInt, nil
		}
	}
	return 0, e.errorf("unhandled expression %T", x)
}

// lowerIndexAccess resolves an (possibly 2-D) index expression into an
// Access with affine stride information.
func (e *env) lowerIndexAccess(ex *lang.IndexExpr, kind ir.AccessKind, ctx *loopCtx) error {
	// Collect the index chain: A[e1][e2] parses as Index(Index(A,e1),e2).
	var indices []lang.Expr
	base := lang.Expr(ex)
	for {
		ie, ok := base.(*lang.IndexExpr)
		if !ok {
			break
		}
		indices = append([]lang.Expr{ie.Index}, indices...)
		base = ie.Base
	}
	id, ok := base.(*lang.Ident)
	if !ok {
		return e.errorf("unsupported array base expression %T", base)
	}
	bt := e.types[id.Name]
	return e.emitIndexed(kind, id.Name, bt.Scalar, bt.Dims, indices, ctx)
}

// emitIndexed builds and records an Access for a subscripted reference to the
// named storage with the given shape. Shared by plain array references and
// struct-field planes.
func (e *env) emitIndexed(kind ir.AccessKind, array string, elem lang.ScalarType, dims []int64, indices []lang.Expr, ctx *loopCtx) error {
	acc := &ir.Access{
		Kind:  kind,
		Array: array,
		Elem:  elem,
		Dims:  append([]int64(nil), dims...),
	}

	// Row-major flattening: for A[R][C], addr = e1*C + e2.
	coeffs := map[string]int64{}
	offset := int64(0)
	affine := true
	exactOffset := true
	for d, idx := range indices {
		mult := int64(1)
		for j := d + 1; j < len(dims); j++ {
			mult *= dims[j]
		}
		c, off, okA, exact := e.affine(idx)
		if !okA {
			affine = false
			// The subscript expression still costs its ops (already lowered
			// as part of evaluating the index if it reads memory).
			if _, err := e.lowerExpr(idx, ctx); err != nil {
				return err
			}
			continue
		}
		if !exact {
			exactOffset = false
		}
		for k, v := range c {
			coeffs[k] += v * mult
		}
		offset += off * mult
	}
	acc.Affine = affine
	acc.Strides = coeffs
	acc.Offset = offset
	acc.ExactOffset = affine && exactOffset
	acc.Aligned = acc.ExactOffset && offset == 0
	e.emitAccess(ctx, acc)
	return nil
}

// lowerMemberAccess lowers a struct field reference. A field of a scalar
// struct variable is a named register (no memory traffic); a field of a
// subscripted struct array element lowers as an access to the field's own
// storage plane, the synthetic array "base.field" with the struct array's
// shape. Distinct fields therefore never alias, which matches the no-pointer
// object model of the language.
func (e *env) lowerMemberAccess(ex *lang.MemberExpr, kind ir.AccessKind, ctx *loopCtx) (lang.ScalarType, error) {
	ft := e.memberType(ex)
	switch base := ex.Base.(type) {
	case *lang.Ident:
		if kind == ir.Store {
			e.emit(ctx, ir.Instr{Op: ir.OpCopy, Type: ft})
		}
		return ft, nil
	case *lang.IndexExpr:
		var indices []lang.Expr
		b := lang.Expr(base)
		for {
			ie, ok := b.(*lang.IndexExpr)
			if !ok {
				break
			}
			indices = append([]lang.Expr{ie.Index}, indices...)
			b = ie.Base
		}
		id, ok := b.(*lang.Ident)
		if !ok {
			return 0, e.errorf("unsupported member base expression %T", b)
		}
		bt := e.types[id.Name]
		return ft, e.emitIndexed(kind, id.Name+"."+ex.Field, ft, bt.Dims, indices, ctx)
	}
	return 0, e.errorf("unsupported member base expression %T", ex.Base)
}

// memberType resolves the scalar type of a struct field reference.
func (e *env) memberType(ex *lang.MemberExpr) lang.ScalarType {
	b := ex.Base
	for {
		ie, ok := b.(*lang.IndexExpr)
		if !ok {
			break
		}
		b = ie.Base
	}
	if id, ok := b.(*lang.Ident); ok {
		if t, okt := e.types[id.Name]; okt && t.IsStruct() {
			if sd, okd := e.structs[t.StructName]; okd {
				if f := sd.Field(ex.Field); f != nil {
					return f.Type
				}
			}
		}
	}
	return lang.TypeInt
}

// affine analyses an index expression as a linear function of in-scope loop
// variables. exact=false means the expression contained a runtime scalar
// treated as an unknown constant offset (stride info is still valid; static
// alignment is not).
func (e *env) affine(x lang.Expr) (coeffs map[string]int64, off int64, ok, exact bool) {
	switch ex := x.(type) {
	case *lang.IntLit:
		return map[string]int64{}, ex.Value, true, true
	case *lang.Ident:
		if label, isIV := e.loopVars[ex.Name]; isIV {
			return map[string]int64{label: 1}, 0, true, true
		}
		if v, isC := e.consts[ex.Name]; isC {
			return map[string]int64{}, v, true, true
		}
		// Runtime scalar: unknown but loop-invariant offset.
		if t, known := e.types[ex.Name]; known && !t.IsArray() {
			return map[string]int64{}, 0, true, false
		}
		return nil, 0, false, false
	case *lang.UnaryExpr:
		if ex.Op != lang.Minus {
			return nil, 0, false, false
		}
		c, o, okx, exactx := e.affine(ex.X)
		if !okx {
			return nil, 0, false, false
		}
		for k := range c {
			c[k] = -c[k]
		}
		return c, -o, true, exactx
	case *lang.BinaryExpr:
		switch ex.Op {
		case lang.Plus, lang.Minus:
			c1, o1, ok1, e1 := e.affine(ex.X)
			c2, o2, ok2, e2 := e.affine(ex.Y)
			if !ok1 || !ok2 {
				return nil, 0, false, false
			}
			sign := int64(1)
			if ex.Op == lang.Minus {
				sign = -1
			}
			for k, v := range c2 {
				c1[k] += sign * v
			}
			return c1, o1 + sign*o2, true, e1 && e2
		case lang.Star:
			// One side must be a compile-time constant.
			if v, okc := e.evalConst(ex.X); okc {
				c, o, okx, exactx := e.affine(ex.Y)
				if !okx {
					return nil, 0, false, false
				}
				for k := range c {
					c[k] *= v
				}
				return c, o * v, true, exactx
			}
			if v, okc := e.evalConst(ex.Y); okc {
				c, o, okx, exactx := e.affine(ex.X)
				if !okx {
					return nil, 0, false, false
				}
				for k := range c {
					c[k] *= v
				}
				return c, o * v, true, exactx
			}
			return nil, 0, false, false
		case lang.Slash, lang.Shr:
			// i/2 or i>>1 is not linear in i; treat as non-affine.
			if v, okc := e.evalConst(x); okc {
				return map[string]int64{}, v, true, true
			}
			return nil, 0, false, false
		}
		if v, okc := e.evalConst(x); okc {
			return map[string]int64{}, v, true, true
		}
		return nil, 0, false, false
	case *lang.CastExpr:
		return e.affine(ex.X)
	}
	if v, okc := e.evalConst(x); okc {
		return map[string]int64{}, v, true, true
	}
	return nil, 0, false, false
}

// evalConst folds integer constant expressions using global/local constant
// bindings.
func (e *env) evalConst(x lang.Expr) (int64, bool) {
	switch ex := x.(type) {
	case *lang.IntLit:
		return ex.Value, true
	case *lang.Ident:
		if _, isIV := e.loopVars[ex.Name]; isIV {
			return 0, false
		}
		v, ok := e.consts[ex.Name]
		return v, ok
	case *lang.UnaryExpr:
		v, ok := e.evalConst(ex.X)
		if !ok {
			return 0, false
		}
		switch ex.Op {
		case lang.Minus:
			return -v, true
		case lang.Tilde:
			return ^v, true
		case lang.Bang:
			if v == 0 {
				return 1, true
			}
			return 0, true
		}
		return 0, false
	case *lang.CastExpr:
		if ex.To.IsInteger() {
			return e.evalConst(ex.X)
		}
		return 0, false
	case *lang.BinaryExpr:
		a, okA := e.evalConst(ex.X)
		b, okB := e.evalConst(ex.Y)
		if !okA || !okB {
			return 0, false
		}
		switch ex.Op {
		case lang.Plus:
			return a + b, true
		case lang.Minus:
			return a - b, true
		case lang.Star:
			return a * b, true
		case lang.Slash:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case lang.Percent:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case lang.Shl:
			return a << uint(b&63), true
		case lang.Shr:
			return a >> uint(b&63), true
		case lang.Amp:
			return a & b, true
		case lang.Pipe:
			return a | b, true
		case lang.Caret:
			return a ^ b, true
		}
		return 0, false
	}
	return 0, false
}

func (e *env) typeOf(x lang.Expr) lang.ScalarType {
	switch ex := x.(type) {
	case *lang.IntLit:
		return lang.TypeInt
	case *lang.FloatLit:
		return lang.TypeDouble
	case *lang.Ident:
		if t, ok := e.types[ex.Name]; ok {
			return t.Scalar
		}
		return lang.TypeInt
	case *lang.IndexExpr:
		base := lang.Expr(ex)
		for {
			ie, ok := base.(*lang.IndexExpr)
			if !ok {
				break
			}
			base = ie.Base
		}
		if id, ok := base.(*lang.Ident); ok {
			if t, okt := e.types[id.Name]; okt {
				return t.Scalar
			}
		}
		return lang.TypeInt
	case *lang.MemberExpr:
		return e.memberType(ex)
	case *lang.BinaryExpr:
		return promote(e.typeOf(ex.X), e.typeOf(ex.Y))
	case *lang.UnaryExpr:
		return e.typeOf(ex.X)
	case *lang.CondExpr:
		return promote(e.typeOf(ex.Then), e.typeOf(ex.Else))
	case *lang.CastExpr:
		return ex.To
	}
	return lang.TypeInt
}

// promote implements C-style usual arithmetic conversions, simplified:
// float beats int, wider beats narrower, and small ints promote to int.
func promote(a, b lang.ScalarType) lang.ScalarType {
	if a.IsFloat() || b.IsFloat() {
		if a == lang.TypeDouble || b == lang.TypeDouble {
			return lang.TypeDouble
		}
		return lang.TypeFloat
	}
	w := a
	if b.Size() > w.Size() {
		w = b
	}
	if w.Size() < lang.TypeInt.Size() {
		return lang.TypeInt
	}
	return w
}

func needsConvert(from, to lang.ScalarType) bool {
	if from == to || from == lang.TypeVoid || to == lang.TypeVoid {
		return false
	}
	// Same-width same-class conversions are free.
	if from.IsFloat() == to.IsFloat() && from.Size() == to.Size() {
		return false
	}
	return true
}

func binOp(k lang.Kind) ir.Op {
	switch k {
	case lang.Plus:
		return ir.OpAdd
	case lang.Minus:
		return ir.OpSub
	case lang.Star:
		return ir.OpMul
	case lang.Slash:
		return ir.OpDiv
	case lang.Percent:
		return ir.OpRem
	case lang.Shl:
		return ir.OpShl
	case lang.Shr:
		return ir.OpShr
	case lang.Amp, lang.AndAnd:
		return ir.OpAnd
	case lang.Pipe, lang.OrOr:
		return ir.OpOr
	case lang.Caret:
		return ir.OpXor
	case lang.Lt, lang.Gt, lang.Le, lang.Ge, lang.EqEq, lang.NotEq:
		return ir.OpCmp
	}
	return ir.OpCopy
}

func isComparisonOp(k lang.Kind) bool {
	switch k {
	case lang.Lt, lang.Gt, lang.Le, lang.Ge, lang.EqEq, lang.NotEq:
		return true
	}
	return false
}

func isComparison(x lang.Expr) bool {
	be, ok := x.(*lang.BinaryExpr)
	return ok && isComparisonOp(be.Op)
}
