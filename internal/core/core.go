// Package core is the public API of the NeuroVectorizer reproduction: the
// end-to-end framework of the paper's Figure 3.
//
// A Framework owns the whole pipeline — parser, loop extractor, code
// embedding generator, RL agent, pragma injection, "compilation"
// (vectorization planning) and "execution" (cycle-level simulation, standing
// in for the paper's physical testbed). Typical use:
//
//	fw := core.New(core.DefaultConfig(), core.WithSeed(1))
//	fw.LoadSet(dataset.Generate(dataset.GenConfig{N: 5000, Seed: 1}))
//	stats := fw.Train(nil)                   // PPO + end-to-end embedding
//	annotated, _, _ := fw.AnnotateSource(ctx, src, nil) // inference on new code
//
// Inference is policy-parameterized: every decision method of the paper's
// comparison (trained agent, baseline cost model, brute force, random,
// Polly, NNS over the learned embedding) is served through the pluggable
// interface of package neurovec/internal/policy, selected per call:
//
//	inf, err := fw.PredictSource(ctx, src, nil, core.WithPolicyName("brute"))
//
// The framework also exposes the reward function and the learned embedding,
// from which the supervised methods (NNS, decision trees) of Section 3.5
// are derived.
package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"

	"neurovec/internal/code2vec"
	"neurovec/internal/costmodel"
	"neurovec/internal/dataset"
	"neurovec/internal/extractor"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/machine"
	"neurovec/internal/nn"
	"neurovec/internal/policy"
	"neurovec/internal/rl"
	"neurovec/internal/sim"
	"neurovec/internal/vectorizer"
)

// Config assembles the framework's components.
type Config struct {
	Arch  *machine.Arch
	Sim   sim.Config
	Embed code2vec.Config
	Lower lower.Options

	// CompileTimeoutFactor and TimeoutPenalty implement Section 3.4: a
	// configuration whose compile time exceeds the factor times the
	// baseline's compile time receives the penalty as its reward.
	CompileTimeoutFactor float64
	TimeoutPenalty       float64

	Seed int64
}

// DefaultConfig returns the paper's settings: AVX-class machine, 340-wide
// code vectors, 10x compile budget with a -9 penalty.
func DefaultConfig() Config {
	arch := machine.IntelAVX2()
	return Config{
		Arch:                 arch,
		Sim:                  sim.Config{Arch: arch, WarmCaches: true},
		Embed:                code2vec.DefaultConfig(),
		Lower:                lower.DefaultOptions(),
		CompileTimeoutFactor: 10,
		TimeoutPenalty:       -9,
		Seed:                 1,
	}
}

// Unit is one loaded loop sample: a parsed program, its primary innermost
// loop, the extracted path contexts, and cached baseline measurements.
type Unit struct {
	Name   string
	Source string

	Prog *ir.Program
	Loop *ir.Loop
	Ctxs []code2vec.Context

	baselinePlans   map[string]*vectorizer.Plan
	baselineCycles  float64
	baselineCompile float64
	scalarCycles    float64 // lazily cached by NormTime
}

// Framework is the end-to-end system.
//
// Concurrency: the mutating APIs (LoadSet/LoadSource/LoadDir, Train,
// SaveModel/LoadModel, and the reward/measurement paths over loaded units)
// are setup- and training-time operations for a single goroutine. The
// inference APIs documented as stateless — PredictSource, AnnotateSource,
// SweepSource, EmbedSource — only read the configuration and trained
// weights, so any number of goroutines may call them once setup is done.
type Framework struct {
	Cfg Config

	units []*Unit
	embed *code2vec.Model
	agent *rl.Agent
	// modelVersion fingerprints the last saved/loaded checkpoint; see
	// ModelVersion.
	modelVersion string

	// policies caches per-name policy instances resolved through the
	// registry. Guarded by policyMu because inference-time callers (the
	// service) resolve policies concurrently; invalidated by the mutating
	// APIs (Train, LoadModel, Load*) whose corpus or weights a policy may
	// have captured.
	policyMu sync.Mutex
	policies map[string]policy.Policy

	// embedPool recycles per-request embedding state (path-context
	// extractor buffers, code2vec forward scratch, one code vector) across
	// the inference paths, so steady-state embedding heap-allocates nothing
	// beyond what a caller asks to own.
	embedPool sync.Pool
}

// embedScratch is one caller's worth of embedding buffers.
type embedScratch struct {
	ex  code2vec.Extractor
	sc  code2vec.Scratch
	vec []float64
}

func (f *Framework) getEmbedScratch() *embedScratch {
	if s, ok := f.embedPool.Get().(*embedScratch); ok {
		return s
	}
	return &embedScratch{vec: make([]float64, f.embed.Dim())}
}

func (f *Framework) putEmbedScratch(s *embedScratch) { f.embedPool.Put(s) }

// New creates an empty framework from cfg with opts applied on top.
func New(cfg Config, opts ...Option) *Framework {
	if cfg.Arch == nil {
		cfg = DefaultConfig()
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Sim.Arch == nil {
		cfg.Sim.Arch = cfg.Arch
	}
	cfg.Embed.Seed = cfg.Seed
	return &Framework{Cfg: cfg, embed: code2vec.NewModel(cfg.Embed)}
}

// Units returns the loaded samples.
func (f *Framework) Units() []*Unit { return f.units }

// Agent returns the trained agent (nil before Train).
func (f *Framework) Agent() *rl.Agent { return f.agent }

// Arch returns the target architecture (part of the policy.Host contract).
func (f *Framework) Arch() *machine.Arch { return f.Cfg.Arch }

// Seed returns the framework seed (part of the policy.Host contract).
func (f *Framework) Seed() int64 { return f.Cfg.Seed }

// Decider returns the trained agent's greedy decision function over
// embedding vectors, or ErrNoAgent when no agent is trained/loaded (part of
// the policy.Host contract). The returned closure reads f.agent per call so
// it stays current across ContinueTraining and LoadModel.
func (f *Framework) Decider() (func(vec []float64) (vf, ifc int), error) {
	if f.agent == nil {
		return nil, ErrNoAgent
	}
	return func(vec []float64) (int, int) { return f.agent.PredictObs(vec) }, nil
}

// DefaultPolicy is the policy PredictSource and AnnotateSource use when the
// caller does not choose one: the paper's trained deep-RL agent.
const DefaultPolicy = "rl"

// Policy resolves a named decision policy from the registry, bound to this
// framework, constructing and caching the instance on first use. Safe for
// concurrent callers; the cache is invalidated when training or loading
// changes the state a policy may have captured.
func (f *Framework) Policy(name string) (policy.Policy, error) {
	f.policyMu.Lock()
	if p, ok := f.policies[name]; ok {
		f.policyMu.Unlock()
		return p, nil
	}
	f.policyMu.Unlock()
	// Construct outside the lock: a factory may be expensive (the NNS index
	// brute-force-labels the corpus), and holding policyMu through it would
	// stall every concurrent request resolving any policy. Racing callers
	// may build duplicates; the first one cached wins.
	p, err := policy.New(name, f)
	if err != nil {
		return nil, err
	}
	f.policyMu.Lock()
	defer f.policyMu.Unlock()
	if existing, ok := f.policies[name]; ok {
		return existing, nil
	}
	if f.policies == nil {
		f.policies = make(map[string]policy.Policy)
	}
	f.policies[name] = p
	return p, nil
}

// InvalidatePolicies drops cached policy instances. Every framework mutation
// calls it internally; external training drivers that step the agent's
// weights directly (package neurovec/internal/trainer) must call it before
// resolving policies against the updated model, because a cached instance
// (the NNS index, say) may have been built from the previous weights.
func (f *Framework) InvalidatePolicies() { f.invalidatePolicies() }

// invalidatePolicies drops cached policy instances; called by every mutation
// that changes the corpus or the trained weights an instance may hold (the
// NNS index, for example, is built from both).
func (f *Framework) invalidatePolicies() {
	f.policyMu.Lock()
	f.policies = nil
	f.policyMu.Unlock()
}

// LoadSet parses, lowers and extracts every sample of a dataset. Programs
// with multiple innermost loops contribute one unit per loop.
func (f *Framework) LoadSet(set *dataset.Set) error {
	for _, s := range set.Samples {
		if err := f.LoadSource(s.Name, s.Source, nil); err != nil {
			return err
		}
	}
	return nil
}

// LoadBenchmarks loads evaluation benchmarks as units (with their simulated
// runtime parameter values).
func (f *Framework) LoadBenchmarks(bs []dataset.Benchmark) error {
	for _, b := range bs {
		if err := f.LoadSource(b.Name, b.Source, b.ParamValues); err != nil {
			return err
		}
	}
	return nil
}

// LoadSource loads one program, creating a unit per innermost loop.
// The unit index range added is [previous len(Units), new len(Units)).
func (f *Framework) LoadSource(name, source string, params map[string]int64) error {
	prog, err := lang.Parse(source)
	if err != nil {
		return fmt.Errorf("core: load %s: %w", name, err)
	}
	opts := f.Cfg.Lower
	if params != nil {
		opts.ParamValues = params
	}
	irp, err := lower.Program(prog, opts)
	if err != nil {
		return fmt.Errorf("core: load %s: %w", name, err)
	}

	infos := extractor.Loops(prog)
	basePlans := costmodel.Plans(irp, f.Cfg.Arch)
	baseCycles := sim.Program(irp, basePlans, f.Cfg.Sim).Cycles
	baseCompile := sim.CompileTime(irp, basePlans, f.Cfg.Arch)

	for _, info := range infos {
		loop := irp.FindLoop(info.Label)
		if loop == nil {
			return fmt.Errorf("core: load %s: loop %s missing from IR", name, info.Label)
		}
		f.units = append(f.units, &Unit{
			Name:            fmt.Sprintf("%s/%s", name, info.Label),
			Source:          source,
			Prog:            irp,
			Loop:            loop,
			Ctxs:            code2vec.ExtractContexts(info.Outermost, f.Cfg.Embed),
			baselinePlans:   basePlans,
			baselineCycles:  baseCycles,
			baselineCompile: baseCompile,
		})
	}
	if len(infos) == 0 {
		return fmt.Errorf("core: load %s: %w", name, ErrNoLoops)
	}
	f.invalidatePolicies()
	return nil
}

// ErrNoLoops is reported when a program contains nothing to vectorize.
var ErrNoLoops = errors.New("program has no loops")

// ErrNoAgent is reported by the inference paths when no agent has been
// trained or loaded — surfaced explicitly instead of the historical silent
// (1, 1) fallback that masked misconfigured deployments. It aliases
// policy.ErrNoAgent so errors.Is matches across both packages.
var ErrNoAgent = policy.ErrNoAgent

// LoadDir loads every .c file under dir, recursively — the paper's input
// granularity ("the directory of code files is fed to the framework as text
// code"). Files without loops are skipped. Returns the number of files that
// contributed units.
func (f *Framework) LoadDir(dir string) (int, error) {
	loaded := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || filepath.Ext(path) != ".c" {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := f.LoadSource(path, string(src), nil); err != nil {
			if errors.Is(err, ErrNoLoops) {
				return nil
			}
			return err
		}
		loaded++
		return nil
	})
	return loaded, err
}

// BaselineChoice returns the baseline cost model's effective (VF, IF) for a
// unit's loop.
func (f *Framework) BaselineChoice(sample int) (vf, ifc int) {
	u := f.units[sample]
	if p := u.baselinePlans[u.Loop.Label]; p != nil {
		return p.VF, p.IF
	}
	return 1, 1
}

// Explain returns the simulator's cycle breakdown for a unit's loop under
// the given factors — the diagnostic view behind the CLI's explain command.
func (f *Framework) Explain(sample, vf, ifc int) sim.Breakdown {
	u := f.units[sample]
	return sim.Explain(u.Loop, vectorizer.New(u.Loop, f.Cfg.Arch, vf, ifc), f.Cfg.Sim)
}

// ---- Environment (reward) ----

// NumSamples implements rl.Env.
func (f *Framework) NumSamples() int { return len(f.units) }

// Reward implements rl.Env: Equation 2 of the paper,
// (t_baseline - t_RL)/t_baseline, with the compile-timeout penalty.
func (f *Framework) Reward(sample, vf, ifc int) float64 {
	u := f.units[sample]
	cycles, compile := f.measure(u, vf, ifc)
	if compile > f.Cfg.CompileTimeoutFactor*u.baselineCompile {
		return f.Cfg.TimeoutPenalty
	}
	if u.baselineCycles <= 0 {
		return 0
	}
	return (u.baselineCycles - cycles) / u.baselineCycles
}

// measure simulates the unit's program with (vf, ifc) injected at its loop
// and all other loops at the baseline decision.
func (f *Framework) measure(u *Unit, vf, ifc int) (cycles, compile float64) {
	plans := make(map[string]*vectorizer.Plan, len(u.baselinePlans))
	for k, v := range u.baselinePlans {
		plans[k] = v
	}
	plans[u.Loop.Label] = vectorizer.New(u.Loop, f.Cfg.Arch, vf, ifc)
	return sim.Program(u.Prog, plans, f.Cfg.Sim).Cycles, sim.CompileTime(u.Prog, plans, f.Cfg.Arch)
}

// Cycles returns the simulated program cycles for a unit under a specific
// factor pair (used by brute force and the evaluation harness).
func (f *Framework) Cycles(sample, vf, ifc int) float64 {
	c, _ := f.measure(f.units[sample], vf, ifc)
	return c
}

// BaselineCycles returns the unit's program cycles under the baseline cost
// model.
func (f *Framework) BaselineCycles(sample int) float64 {
	return f.units[sample].baselineCycles
}

// CompileBlowup returns the ratio of the program's compile time under
// (vf, ifc) at the unit's loop to the baseline's compile time — the
// quantity the Section 3.4 timeout rule thresholds at 10x.
func (f *Framework) CompileBlowup(sample, vf, ifc int) float64 {
	u := f.units[sample]
	_, compile := f.measure(u, vf, ifc)
	if u.baselineCompile <= 0 {
		return 1
	}
	return compile / u.baselineCompile
}

// NormTime returns the simulated time under (vf, ifc) normalized to the
// unit's scalar (VF=1, IF=1) time — the regression target of the Section 5
// learned cost model (package ranker).
func (f *Framework) NormTime(sample, vf, ifc int) float64 {
	u := f.units[sample]
	if u.scalarCycles == 0 {
		u.scalarCycles, _ = f.measure(u, 1, 1)
	}
	if u.scalarCycles <= 0 {
		return 1
	}
	c, _ := f.measure(u, vf, ifc)
	return c / u.scalarCycles
}

// ---- Embedder adapter ----

// embedAdapter exposes the code2vec model as an rl.Embedder over units.
type embedAdapter struct {
	fw *Framework
}

func (e *embedAdapter) Embed(sample int) ([]float64, any) {
	vec, st := e.fw.embed.Forward(e.fw.units[sample].Ctxs)
	return vec, st
}

func (e *embedAdapter) Backward(state any, dvec []float64) {
	e.fw.embed.Backward(state.(*code2vec.State), dvec)
}

func (e *embedAdapter) Params() []*nn.Param { return e.fw.embed.Params() }
func (e *embedAdapter) Dim() int            { return e.fw.embed.Dim() }

// Embedding returns the current code vector for a unit — the representation
// handed to NNS and decision trees after RL training (Section 3.5). The
// returned slice is freshly owned by the caller; hot paths that can supply
// a destination should use EmbeddingInto.
func (f *Framework) Embedding(sample int) []float64 {
	vec := make([]float64, f.embed.Dim())
	f.EmbeddingInto(vec, sample)
	return vec
}

// EmbedDim returns the code-vector dimensionality — the length callers must
// size EmbeddingInto destinations to.
func (f *Framework) EmbedDim() int { return f.embed.Dim() }

// EmbeddingInto writes the unit's current code vector into dst (length
// EmbedDim) through pooled scratch, performing zero heap allocations in
// steady state. Bit-identical to Embedding. Safe for concurrent callers.
func (f *Framework) EmbeddingInto(dst []float64, sample int) []float64 {
	s := f.getEmbedScratch()
	defer f.putEmbedScratch(s)
	return f.embed.ForwardInto(dst, f.units[sample].Ctxs, &s.sc)
}

// EmbedSource embeds an arbitrary source program's first innermost loop
// without loading it as a unit. It builds only per-request state plus
// pooled extraction/forward scratch, and is safe for concurrent callers
// (the embedder's forward pass is read-only). The returned vector is
// freshly owned by the caller.
func (f *Framework) EmbedSource(source string) ([]float64, error) {
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, err
	}
	infos := extractor.Loops(prog)
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no loops in source: %w", ErrNoLoops)
	}
	s := f.getEmbedScratch()
	defer f.putEmbedScratch(s)
	vec := make([]float64, f.embed.Dim())
	f.embed.ForwardInto(vec, s.ex.Extract(infos[0].Outermost, f.Cfg.Embed), &s.sc)
	return vec, nil
}

// ---- Training and inference ----

// normalizeRL fills an RL configuration's defaults from the framework: the
// architecture's action space and the framework seed.
func (f *Framework) normalizeRL(cfg *rl.Config) rl.Config {
	c := rl.DefaultConfig(f.Cfg.Arch.VFs(), f.Cfg.Arch.IFs())
	if cfg != nil {
		c = *cfg
		if len(c.VFs) == 0 {
			c.VFs = f.Cfg.Arch.VFs()
		}
		if len(c.IFs) == 0 {
			c.IFs = f.Cfg.Arch.IFs()
		}
	}
	if c.Seed == 0 {
		c.Seed = f.Cfg.Seed
	}
	return c
}

// InitAgent builds a fresh, untrained agent over the framework's embedder
// and installs it as the framework's agent, without running any training.
// External training drivers (package neurovec/internal/trainer) use it to
// own the iteration loop themselves; in-process callers normally use Train.
// Passing nil uses the paper's default hyperparameters.
func (f *Framework) InitAgent(cfg *rl.Config) *rl.Agent {
	f.agent = rl.NewAgent(&embedAdapter{fw: f}, f.normalizeRL(cfg))
	f.invalidatePolicies()
	return f.agent
}

// Train runs PPO over the loaded units. Passing nil uses the paper's
// defaults. Returns the learning curves.
func (f *Framework) Train(cfg *rl.Config) *rl.Stats {
	return f.InitAgent(cfg).Train(f)
}

// TrainWithEmbedder trains the agent on a caller-supplied observation source
// instead of the code2vec model — used by the hand-crafted-features ablation
// (package features). The embedder's sample IDs must match the framework's
// unit indices.
func (f *Framework) TrainWithEmbedder(emb rl.Embedder, cfg *rl.Config) *rl.Stats {
	f.agent = rl.NewAgent(emb, f.normalizeRL(cfg))
	f.invalidatePolicies()
	return f.agent.Train(f)
}

// ContinueTraining runs additional PPO iterations on the current agent over
// the currently loaded units — the paper's footnote 2: "it might still be
// beneficial to keep online training activated so that when completely new
// loops are observed, the agent learns how to optimize them too". Load the
// new programs first (LoadSource/LoadBenchmarks), then call this.
func (f *Framework) ContinueTraining(iterations int) (*rl.Stats, error) {
	if f.agent == nil {
		return nil, fmt.Errorf("core: no agent; call Train first: %w", ErrNoAgent)
	}
	// The iteration count is passed explicitly rather than written into the
	// shared Cfg: a save/restore of Cfg.Iterations would expose a transient
	// value to anything concurrently reading the agent's config.
	f.invalidatePolicies()
	stats := f.agent.TrainIterations(f, iterations)
	return stats, nil
}

// CodeEmbedder exposes the framework's code2vec model as an rl.Embedder,
// for use with external learners such as the ranker.
func (f *Framework) CodeEmbedder() rl.Embedder { return &embedAdapter{fw: f} }

// UnitLoops returns the primary innermost loop of every unit, in order —
// the input the feature-ablation embedder consumes.
func (f *Framework) UnitLoops() []*ir.Loop {
	out := make([]*ir.Loop, len(f.units))
	for i, u := range f.units {
		out[i] = u.Loop
	}
	return out
}

// Predict returns the agent's greedy (VF, IF) for a loaded unit, or
// ErrNoAgent when no agent has been trained or loaded. (It used to return a
// silent (1, 1) in that case, which made a misconfigured deployment
// indistinguishable from a policy that genuinely picks scalar code.)
func (f *Framework) Predict(sample int) (vf, ifc int, err error) {
	if f.agent == nil {
		return 0, 0, ErrNoAgent
	}
	vf, ifc = f.agent.Predict(sample)
	return vf, ifc, nil
}

// BruteForceLabel exhaustively searches the action space for a unit and
// returns the best pair (the supervised-learning label of Section 3.5).
func (f *Framework) BruteForceLabel(sample int) (vf, ifc int) {
	best := math.Inf(1)
	vf, ifc = 1, 1
	for _, v := range f.Cfg.Arch.VFs() {
		for _, c := range f.Cfg.Arch.IFs() {
			if cy := f.Cycles(sample, v, c); cy < best {
				best, vf, ifc = cy, v, c
			}
		}
	}
	return vf, ifc
}

// AnnotateSource runs inference on new source text: it extracts the loops,
// asks the selected policy (default: the trained agent) for factors, and
// returns the source with the pragmas injected (the paper's Figure 4 output)
// plus the decisions.
//
// It is a thin wrapper over PredictSource and shares its concurrency
// contract: no framework state is mutated, so concurrent annotation requests
// on a trained framework are safe.
func (f *Framework) AnnotateSource(ctx context.Context, source string, params map[string]int64, opts ...InferOption) (string, []extractor.Decision, error) {
	inf, err := f.PredictSource(ctx, source, params, opts...)
	if err != nil {
		return "", nil, err
	}
	return inf.Annotated, inf.Decisions, nil
}
