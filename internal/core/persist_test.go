package core

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"neurovec/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	fw := smallFramework(t, 40)
	fw.Train(fastRL(8))

	// Record the trained policy's decisions.
	type pair struct{ vf, ifc int }
	want := make([]pair, fw.NumSamples())
	for i := range want {
		vf, ifc, err := fw.Predict(i)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = pair{vf, ifc}
	}

	var buf bytes.Buffer
	if err := fw.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}

	// Fresh framework with the same units but untrained weights.
	fw2 := smallFramework(t, 40)
	if err := fw2.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		vf, ifc, err := fw2.Predict(i)
		if err != nil {
			t.Fatal(err)
		}
		if vf != want[i].vf || ifc != want[i].ifc {
			t.Fatalf("unit %d: restored policy predicts (%d,%d), original (%d,%d)",
				i, vf, ifc, want[i].vf, want[i].ifc)
		}
	}
}

func TestSaveWithoutTraining(t *testing.T) {
	fw := smallFramework(t, 3)
	var buf bytes.Buffer
	if err := fw.SaveModel(&buf); err == nil {
		t.Fatal("expected error saving an untrained framework")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	fw := smallFramework(t, 3)
	if err := fw.LoadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestLoadRejectsMismatchedShape(t *testing.T) {
	fw := smallFramework(t, 20)
	fw.Train(fastRL(4))
	var buf bytes.Buffer
	if err := fw.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the header's hidden sizes by saving from a different agent
	// config and loading into... easier: truncate the stream so weights are
	// missing.
	trunc := buf.Bytes()[:buf.Len()/2]
	fw2 := smallFramework(t, 20)
	if err := fw2.LoadModel(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error on truncated snapshot")
	}
}

func TestSaveLoadFile(t *testing.T) {
	fw := smallFramework(t, 20)
	fw.Train(fastRL(4))
	path := filepath.Join(t.TempDir(), "model.gob")
	if err := fw.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	fw2 := smallFramework(t, 20)
	if err := fw2.LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	v1, i1, err1 := fw.Predict(0)
	v2, i2, err2 := fw2.Predict(0)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1 != v2 || i1 != i2 {
		t.Fatal("file round trip changed predictions")
	}
}

func TestRestoredModelAnnotatesNewCode(t *testing.T) {
	fw := smallFramework(t, 40)
	fw.Train(fastRL(8))
	var buf bytes.Buffer
	if err := fw.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}

	fw2 := New(fw.Cfg)
	// A restored model needs no units at all for pure inference.
	if err := fw2.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	src := `
int a[512];
int b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[i] * 3;
    }
}
`
	out1, d1, err := fw.AnnotateSource(context.Background(), src, nil)
	if err != nil {
		t.Fatal(err)
	}
	out2, d2, err := fw2.AnnotateSource(context.Background(), src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out1 != out2 || d1[0] != d2[0] {
		t.Fatalf("restored model annotates differently:\n%s\nvs\n%s", out1, out2)
	}
}

func TestLoadSetFromDatasetAfterRestore(t *testing.T) {
	fw := smallFramework(t, 30)
	fw.Train(fastRL(4))
	var buf bytes.Buffer
	if err := fw.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	fw2 := New(fw.Cfg)
	if err := fw2.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if err := fw2.LoadSet(dataset.Generate(dataset.GenConfig{N: 5, Seed: 42})); err != nil {
		t.Fatal(err)
	}
	if fw2.NumSamples() < 5 {
		t.Fatal("units not loadable after restore")
	}
	vf, ifc, err := fw2.Predict(0)
	if err != nil {
		t.Fatal(err)
	}
	if vf < 1 || ifc < 1 {
		t.Fatal("prediction after restore invalid")
	}
}
