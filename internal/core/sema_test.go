package core

import (
	"context"
	"errors"
	"testing"

	"neurovec/internal/diag"
)

// badSrc has one semantic error (undeclared identifier) plus a warning, and
// still contains a perfectly lowerable loop — the program strict mode must
// reject and lax mode must compile with annotations.
const badSrc = `
int a[64];
void f() {
    int dead;
    a[0] = oops;
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
}
`

// warnOnlySrc carries warnings but no errors; strict mode must accept it.
const warnOnlySrc = `
int a[64];
void f() {
    int dead;
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
}
`

func TestPredictLoopsLaxAnnotates(t *testing.T) {
	fw := New(DefaultConfig())
	resp, err := fw.PredictLoops(context.Background(), badSrc, nil, WithPolicyName("costmodel"))
	if err != nil {
		t.Fatalf("lax compile failed: %v", err)
	}
	if len(resp.Loops) == 0 {
		t.Fatal("no loop decisions despite best-effort compile")
	}
	if !resp.Diagnostics.HasErrors() {
		t.Fatalf("response diagnostics missing the error:\n%s", resp.Diagnostics.String())
	}
	var codes []string
	for _, d := range resp.Diagnostics {
		codes = append(codes, d.Code)
	}
	if len(codes) < 2 {
		t.Errorf("expected error + warning, got %v", codes)
	}
}

func TestPredictLoopsStrictRejects(t *testing.T) {
	fw := New(DefaultConfig())
	_, err := fw.PredictLoops(context.Background(), badSrc, nil, WithPolicyName("costmodel"), WithStrictSema(), WithSourceName("bad.c"))
	if err == nil {
		t.Fatal("strict compile accepted a program with semantic errors")
	}
	if !errors.Is(err, ErrSemantic) {
		t.Fatalf("error %v does not unwrap to ErrSemantic", err)
	}
	var serr *SemanticError
	if !errors.As(err, &serr) {
		t.Fatalf("error %T is not a *SemanticError", err)
	}
	if !serr.Diags.HasErrors() {
		t.Fatal("SemanticError carries no error diagnostics")
	}
	for _, d := range serr.Diags {
		if d.File != "bad.c" {
			t.Errorf("diagnostic file = %q, want bad.c (WithSourceName)", d.File)
		}
	}
}

func TestPredictLoopsStrictAcceptsWarnings(t *testing.T) {
	fw := New(DefaultConfig())
	resp, err := fw.PredictLoops(context.Background(), warnOnlySrc, nil, WithPolicyName("costmodel"), WithStrictSema())
	if err != nil {
		t.Fatalf("strict compile rejected a warning-only program: %v", err)
	}
	if resp.Diagnostics.HasErrors() {
		t.Fatal("warning-only program reported errors")
	}
	found := false
	for _, d := range resp.Diagnostics {
		if d.Severity == diag.Warning {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings not carried through:\n%s", resp.Diagnostics.String())
	}
}

// TestPredictLoopsCleanHasNoDiagnostics pins the zero-noise contract on the
// happy path: a clean kernel's response has an empty diagnostics list, so
// the field marshals away entirely.
func TestPredictLoopsCleanHasNoDiagnostics(t *testing.T) {
	fw := New(DefaultConfig())
	resp, err := fw.PredictLoops(context.Background(), `
int a[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
}
`, nil, WithPolicyName("costmodel"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Diagnostics) != 0 {
		t.Errorf("clean kernel produced diagnostics:\n%s", resp.Diagnostics.String())
	}
}

// TestSemaFactsReachSimulation asserts the facts pipeline end to end inside
// core: a nest only provable with sema facts gets a vectorized (VF > 1)
// decision through the ordinary inference path.
func TestSemaFactsReachSimulation(t *testing.T) {
	fw := New(DefaultConfig())
	resp, err := fw.PredictLoops(context.Background(), `
int a[256];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i + 64] = a[0] * 2;
    }
}
`, nil, WithPolicyName("costmodel"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(resp.Loops))
	}
	if resp.Loops[0].VF <= 1 {
		t.Errorf("VF = %d; sema facts should legalize vectorization of this nest", resp.Loops[0].VF)
	}
}
