package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"neurovec/internal/api"
	"neurovec/internal/nn"
	"neurovec/internal/policy"
	"neurovec/internal/rl"
)

func TestResponseMemoServesSharedResponse(t *testing.T) {
	fw := versionedFramework(t)
	memo := NewResponseMemo(0)
	ctx := context.Background()
	opts := []InferOption{WithPolicyName("costmodel"), WithResponseMemo(memo)}

	r1, err := fw.PredictLoops(ctx, twoLoopSrc, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := fw.PredictLoops(ctx, twoLoopSrc, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("second call did not return the memoized response")
	}
	if memo.Len() != 1 {
		t.Fatalf("memo holds %d responses, want 1", memo.Len())
	}
	// A different source is a different entry.
	other := "float z[32]; void g() { for (int i = 0; i < 32; i++) { z[i] = z[i] + 1; } }"
	r3, err := fw.PredictLoops(ctx, other, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if r3 == r1 {
		t.Fatal("different source served the same response")
	}
	if memo.Len() != 2 {
		t.Fatalf("memo holds %d responses, want 2", memo.Len())
	}
}

func TestResponseMemoBypasses(t *testing.T) {
	ctx := context.Background()
	t.Run("no model version", func(t *testing.T) {
		cfg := DefaultConfig()
		cfg.Embed.OutDim = 48
		cfg.Embed.EmbedDim = 12
		fw := New(cfg) // never saved/loaded: ModelVersion is empty
		memo := NewResponseMemo(0)
		if _, err := fw.PredictLoops(ctx, twoLoopSrc, nil, WithPolicyName("costmodel"), WithResponseMemo(memo)); err != nil {
			t.Fatal(err)
		}
		if memo.Len() != 0 {
			t.Fatalf("memo stored %d responses without a fingerprinted checkpoint", memo.Len())
		}
	})
	t.Run("pins", func(t *testing.T) {
		fw := versionedFramework(t)
		memo := NewResponseMemo(0)
		ids := sourceIDs(t, twoLoopSrc)
		_, err := fw.PredictLoops(ctx, twoLoopSrc, nil,
			WithPolicyName("costmodel"), WithResponseMemo(memo),
			WithPins([]api.Pin{{Loop: ids["L0"], VF: 4, IF: 2}}))
		if err != nil {
			t.Fatal(err)
		}
		if memo.Len() != 0 {
			t.Fatalf("memo stored %d pinned responses", memo.Len())
		}
	})
	t.Run("params", func(t *testing.T) {
		fw := versionedFramework(t)
		memo := NewResponseMemo(0)
		src := "float a[64]; void f(int n) { for (int i = 0; i < n; i++) { a[i] = a[i] * 2; } }"
		if _, err := fw.PredictLoops(ctx, src, map[string]int64{"n": 64},
			WithPolicyName("costmodel"), WithResponseMemo(memo)); err != nil {
			t.Fatal(err)
		}
		if memo.Len() != 0 {
			t.Fatalf("memo stored %d parameterized responses", memo.Len())
		}
	})
	t.Run("distinct file attribution", func(t *testing.T) {
		fw := versionedFramework(t)
		memo := NewResponseMemo(0)
		r1, err := fw.PredictLoops(ctx, twoLoopSrc, nil,
			WithPolicyName("costmodel"), WithResponseMemo(memo), WithSourceName("a.c"))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := fw.PredictLoops(ctx, twoLoopSrc, nil,
			WithPolicyName("costmodel"), WithResponseMemo(memo), WithSourceName("b.c"))
		if err != nil {
			t.Fatal(err)
		}
		if r1 == r2 {
			t.Fatal("responses with different file attribution were shared")
		}
	})
}

func TestResponseMemoTwoGenerationEviction(t *testing.T) {
	m := NewResponseMemo(2)
	mk := func(i int) memoKey { return memoKey{version: "v", policy: "p", source: fmt.Sprintf("s%d", i)} }
	r := &api.CompileResponse{}
	m.put(mk(0), r)
	m.put(mk(1), r) // cur full
	m.put(mk(2), r) // turnover: {0,1} -> prev, cur = {2}
	if _, ok := m.get(mk(0)); !ok {
		t.Fatal("entry lost after one turnover")
	}
	// The get above promoted 0 into cur; fill cur and turn over twice more
	// so unpromoted entries age out.
	m.put(mk(3), r)
	m.put(mk(4), r)
	m.put(mk(5), r)
	if _, ok := m.get(mk(1)); ok {
		t.Fatal("unpromoted entry survived two turnovers")
	}
}

// TestPredictLoopsMemoZeroAllocs is the acceptance invariant behind the
// predict_loops_costmodel_cached benchmark: a memo hit performs zero heap
// allocations.
func TestPredictLoopsMemoZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector")
	}
	fw := versionedFramework(t)
	memo := NewResponseMemo(0)
	ctx := context.Background()
	opts := []InferOption{WithPolicyName("costmodel"), WithResponseMemo(memo)}
	if _, err := fw.PredictLoops(ctx, twoLoopSrc, nil, opts...); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.PredictLoops(ctx, twoLoopSrc, nil, opts...); err != nil {
		t.Fatal(err) // second call promotes/settles pools
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := fw.PredictLoops(ctx, twoLoopSrc, nil, opts...); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("memo-hit PredictLoops allocates %v per run, want 0", allocs)
	}
}

func TestEmbeddingIntoParityAndAllocs(t *testing.T) {
	fw := versionedFramework(t)
	if err := fw.LoadSource("two.c", twoLoopSrc, nil); err != nil {
		t.Fatal(err)
	}
	want := fw.Embedding(0)
	dst := make([]float64, len(want))
	got := fw.EmbeddingInto(dst, 0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("EmbeddingInto[%d] = %g, want %g (must be bit-identical)", i, got[i], want[i])
		}
	}
	if raceEnabled {
		return // sync.Pool drops items at random under the race detector
	}
	fw.EmbeddingInto(dst, 0) // settle the pool
	if allocs := testing.AllocsPerRun(100, func() { fw.EmbeddingInto(dst, 0) }); allocs != 0 {
		t.Fatalf("EmbeddingInto allocates %v per run, want 0", allocs)
	}
}

// narrowEmbedder reports a different width than the vectors the core embed
// path produces — the embed-config skew of a malformed deployment.
type narrowEmbedder struct{ dim int }

func (e *narrowEmbedder) Embed(sample int) ([]float64, any) { return make([]float64, e.dim), nil }
func (e *narrowEmbedder) Backward(any, []float64)           {}
func (e *narrowEmbedder) Params() []*nn.Param               { return nil }
func (e *narrowEmbedder) Dim() int                          { return e.dim }

// TestShapeMismatchSurfacesTypedError drives a real shape-skewed model
// through PredictLoops and asserts the nn panic comes back as ErrModelShape
// instead of crashing the caller.
func TestShapeMismatchSurfacesTypedError(t *testing.T) {
	fw := versionedFramework(t)
	// Agent trained against a 16-wide embedder; the framework's code2vec
	// model emits 48-wide vectors. The rl policy will feed 48 into a trunk
	// expecting 16.
	fw.agent = rl.NewAgent(&narrowEmbedder{dim: 16}, fw.normalizeRL(nil))
	fw.invalidatePolicies()
	_, err := fw.PredictLoops(context.Background(), twoLoopSrc, nil, WithPolicyName("rl"))
	if err == nil {
		t.Fatal("shape-skewed model did not error")
	}
	if !errors.Is(err, ErrModelShape) {
		t.Fatalf("error %v does not wrap ErrModelShape", err)
	}
}

// panicPolicy raises an arbitrary (non-shape) panic from Decide.
type panicPolicy struct{}

func (panicPolicy) Name() string { return "panic" }
func (panicPolicy) Decide(context.Context, *policy.Request) (*policy.Decision, error) {
	panic("unrelated bug")
}

// TestSafeDecideOnlyCatchesShapeErrors pins the recover's scope: arbitrary
// panics must propagate (the pool-level recover owns those), only the typed
// shape panic is translated here.
func TestSafeDecideOnlyCatchesShapeErrors(t *testing.T) {
	fw := versionedFramework(t)
	defer func() {
		if recover() == nil {
			t.Fatal("non-shape panic was swallowed")
		}
	}()
	fw.PredictLoops(context.Background(), twoLoopSrc, nil, WithPolicy(panicPolicy{}))
}
