package core

import (
	"context"
	"sync"
	"testing"

	"neurovec/internal/dataset"
)

// raceSources returns a few distinct programs for concurrent-inference tests.
func raceSources(t *testing.T, n int) []string {
	t.Helper()
	set := dataset.Generate(dataset.GenConfig{N: n, Seed: 99})
	out := make([]string, 0, n)
	for _, s := range set.Samples {
		out = append(out, s.Source)
	}
	return out
}

// TestConcurrentInference hammers every stateless inference entry point from
// many goroutines at once (run under -race) and checks that concurrent
// results are identical to the single-threaded ones.
func TestConcurrentInference(t *testing.T) {
	fw := smallFramework(t, 30)
	fw.Train(fastRL(4))
	srcs := raceSources(t, 4)

	// Single-threaded golden results.
	type golden struct {
		annotated string
		vec0      float64
		sweep00   float64
	}
	want := make([]golden, len(srcs))
	for i, src := range srcs {
		annotated, _, err := fw.AnnotateSource(context.Background(), src, nil)
		if err != nil {
			t.Fatal(err)
		}
		vec, err := fw.EmbedSource(src)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := fw.SweepSource(context.Background(), src, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = golden{annotated: annotated, vec0: vec[0], sweep00: sw.Speedup[0][0]}
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (w + r) % len(srcs)
				annotated, _, err := fw.AnnotateSource(context.Background(), srcs[i], nil)
				if err != nil {
					errs <- err
					return
				}
				if annotated != want[i].annotated {
					t.Errorf("worker %d: concurrent annotation differs for source %d", w, i)
					return
				}
				vec, err := fw.EmbedSource(srcs[i])
				if err != nil {
					errs <- err
					return
				}
				if vec[0] != want[i].vec0 {
					t.Errorf("worker %d: concurrent embedding differs for source %d", w, i)
					return
				}
				inf, err := fw.PredictSource(context.Background(), srcs[i], nil)
				if err != nil {
					errs <- err
					return
				}
				if inf.Annotated != want[i].annotated {
					t.Errorf("worker %d: PredictSource disagrees with AnnotateSource", w)
					return
				}
				sw, err := fw.SweepSource(context.Background(), srcs[i], nil)
				if err != nil {
					errs <- err
					return
				}
				if sw.Speedup[0][0] != want[i].sweep00 {
					t.Errorf("worker %d: concurrent sweep differs for source %d", w, i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPredictSourceMatchesUnitPath checks the stateless policy path against
// the legacy unit-indexed one: loading the same program as units and calling
// Predict must give the decisions PredictSource computes.
func TestPredictSourceMatchesUnitPath(t *testing.T) {
	fw := smallFramework(t, 30)
	fw.Train(fastRL(4))
	src := raceSources(t, 1)[0]

	inf, err := fw.PredictSource(context.Background(), src, nil)
	if err != nil {
		t.Fatal(err)
	}
	start := fw.NumSamples()
	if err := fw.LoadSource("probe", src, nil); err != nil {
		t.Fatal(err)
	}
	for i, d := range inf.Decisions {
		vf, ifc, err := fw.Predict(start + i)
		if err != nil {
			t.Fatal(err)
		}
		if vf != d.VF || ifc != d.IF {
			t.Fatalf("loop %s: stateless path (%d,%d), unit path (%d,%d)",
				d.Label, d.VF, d.IF, vf, ifc)
		}
	}
}

// TestPredictSourceSpeedups sanity-checks the simulated speedup fields.
func TestPredictSourceSpeedups(t *testing.T) {
	fw := smallFramework(t, 30)
	fw.Train(fastRL(4))
	src := raceSources(t, 1)[0]
	inf, err := fw.PredictSource(context.Background(), src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inf.BaselineCycles <= 0 || inf.PredictedCycles <= 0 {
		t.Fatalf("non-positive cycles: baseline %v predicted %v",
			inf.BaselineCycles, inf.PredictedCycles)
	}
	if inf.Speedup <= 0 {
		t.Fatalf("non-positive speedup %v", inf.Speedup)
	}
	if len(inf.Loops) != len(inf.Decisions) {
		t.Fatalf("%d loop predictions, %d decisions", len(inf.Loops), len(inf.Decisions))
	}
	for _, lp := range inf.Loops {
		if lp.Speedup <= 0 {
			t.Fatalf("loop %s: non-positive speedup %v", lp.Label, lp.Speedup)
		}
	}
}

// TestModelVersionStamping checks that save/load stamp a stable fingerprint
// and that different weights fingerprint differently.
func TestModelVersionStamping(t *testing.T) {
	fw := smallFramework(t, 20)
	fw.Train(fastRL(2))
	if v := fw.ModelVersion(); v != "" {
		t.Fatalf("version %q before any save/load, want empty", v)
	}
	dir := t.TempDir()
	path := dir + "/m.gob"
	if err := fw.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	v1 := fw.ModelVersion()
	if v1 == "" {
		t.Fatal("empty version after save")
	}
	fw2 := New(DefaultConfig())
	if err := fw2.LoadModelFile(path); err != nil {
		t.Fatal(err)
	}
	if v2 := fw2.ModelVersion(); v2 != v1 {
		t.Fatalf("loaded version %q, saved %q", v2, v1)
	}
	// More training produces different weights, hence a different stamp.
	if _, err := fw.ContinueTraining(2); err != nil {
		t.Fatal(err)
	}
	if err := fw.SaveModelFile(path); err != nil {
		t.Fatal(err)
	}
	if fw.ModelVersion() == v1 {
		t.Fatal("version unchanged after retraining")
	}
}
