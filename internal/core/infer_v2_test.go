package core

import (
	"context"
	"io"
	"strings"
	"sync"
	"testing"

	"neurovec/internal/api"
	"neurovec/internal/lang"
)

// The v2 inference tests cover the loop-granular entrypoint: stable LoopIDs
// in responses, per-loop pins, the PredictSource adapter's parity with
// PredictLoops, and the per-loop decision/embedding caches.

const twoLoopSrc = `
float a[64];
float b[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = a[i] * 2;
    }
    for (int j = 0; j < 64; j++) {
        b[j] = b[j] + 1;
    }
}
`

// versionedFramework returns a framework with a fingerprinted (untrained)
// checkpoint, which is what arms the per-loop caches.
func versionedFramework(t *testing.T) *Framework {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Embed.OutDim = 48
	cfg.Embed.EmbedDim = 12
	cfg.Embed.MaxContexts = 40
	fw := New(cfg)
	fw.InitAgent(nil)
	if err := fw.SaveModel(io.Discard); err != nil {
		t.Fatal(err)
	}
	if fw.ModelVersion() == "" {
		t.Fatal("SaveModel did not stamp a model version")
	}
	return fw
}

func sourceIDs(t *testing.T, src string) map[string]api.LoopID {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return api.LoopIDs(prog)
}

func TestPredictLoopsCarriesStableIDs(t *testing.T) {
	fw := New(DefaultConfig())
	resp, err := fw.PredictLoops(context.Background(), twoLoopSrc, nil, WithPolicyName("costmodel"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != api.Version {
		t.Errorf("response version = %d, want %d", resp.Version, api.Version)
	}
	ids := sourceIDs(t, twoLoopSrc)
	if len(resp.Loops) != len(ids) {
		t.Fatalf("got %d decisions, want %d", len(resp.Loops), len(ids))
	}
	for _, d := range resp.Loops {
		if d.Loop != ids[d.Label] {
			t.Errorf("loop %s: id %s, want %s", d.Label, d.Loop, ids[d.Label])
		}
		if d.Provenance.Origin != api.OriginPolicy || d.Provenance.Policy != "costmodel" {
			t.Errorf("loop %s: provenance %+v, want policy costmodel", d.Label, d.Provenance)
		}
	}
}

func TestPredictLoopsHonorsPins(t *testing.T) {
	fw := New(DefaultConfig())
	ids := sourceIDs(t, twoLoopSrc)
	resp, err := fw.PredictLoops(context.Background(), twoLoopSrc, nil,
		WithPolicyName("costmodel"),
		WithPins([]api.Pin{{Loop: ids["L0"], VF: 4, IF: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	var pinnedSeen bool
	for _, d := range resp.Loops {
		switch d.Label {
		case "L0":
			pinnedSeen = true
			if d.VF != 4 || d.IF != 2 {
				t.Errorf("pinned loop decided (VF=%d, IF=%d), want (4, 2)", d.VF, d.IF)
			}
			if d.Provenance.Origin != api.OriginPin {
				t.Errorf("pinned loop origin %q, want %q", d.Provenance.Origin, api.OriginPin)
			}
		default:
			if d.Provenance.Origin != api.OriginPolicy {
				t.Errorf("unpinned loop %s origin %q, want %q", d.Label, d.Provenance.Origin, api.OriginPolicy)
			}
		}
	}
	if !pinnedSeen {
		t.Fatal("pinned loop missing from response")
	}
	if !strings.Contains(resp.Annotated, "vectorize_width(4) interleave_count(2)") {
		t.Errorf("annotated source does not carry the pinned pragma:\n%s", resp.Annotated)
	}
	// Pinning by label must behave identically.
	byLabel, err := fw.PredictLoops(context.Background(), twoLoopSrc, nil,
		WithPolicyName("costmodel"),
		WithPins([]api.Pin{{Label: "L0", VF: 4, IF: 2}}))
	if err != nil {
		t.Fatal(err)
	}
	if byLabel.Loops[0].VF != 4 || byLabel.Loops[0].IF != 2 {
		t.Errorf("label-addressed pin not honored: %+v", byLabel.Loops[0])
	}
}

func TestPredictLoopsRejectsBadPins(t *testing.T) {
	fw := New(DefaultConfig())
	for name, pins := range map[string][]api.Pin{
		"unknown id":    {{Loop: "deadbeefdeadbeef", VF: 4, IF: 2}},
		"unknown label": {{Label: "L9", VF: 4, IF: 2}},
		"vf off-space":  {{Label: "L0", VF: 3, IF: 2}},
		"if off-space":  {{Label: "L0", VF: 4, IF: 5}},
		"duplicate": {
			{Label: "L0", VF: 4, IF: 2},
			{Label: "L0", VF: 2, IF: 2},
		},
	} {
		_, err := fw.PredictLoops(context.Background(), twoLoopSrc, nil,
			WithPolicyName("costmodel"), WithPins(pins))
		if !errorsIsBadPin(err) {
			t.Errorf("%s: error = %v, want ErrBadPin", name, err)
		}
	}
}

func errorsIsBadPin(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == ErrBadPin {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

func TestPredictSourceIsThinAdapterOverPredictLoops(t *testing.T) {
	fw := New(DefaultConfig())
	ctx := context.Background()
	resp, err := fw.PredictLoops(ctx, twoLoopSrc, nil, WithPolicyName("costmodel"))
	if err != nil {
		t.Fatal(err)
	}
	inf, err := fw.PredictSource(ctx, twoLoopSrc, nil, WithPolicyName("costmodel"))
	if err != nil {
		t.Fatal(err)
	}
	if inf.Annotated != resp.Annotated {
		t.Error("adapter annotated source differs from PredictLoops")
	}
	if inf.Policy != resp.Policy || inf.Speedup != resp.Speedup ||
		inf.BaselineCycles != resp.BaselineCycles || inf.PredictedCycles != resp.PredictedCycles {
		t.Errorf("adapter aggregates differ: %+v vs %+v", inf, resp)
	}
	if len(inf.Loops) != len(resp.Loops) {
		t.Fatalf("adapter loop count %d, want %d", len(inf.Loops), len(resp.Loops))
	}
	for i, lp := range inf.Loops {
		d := resp.Loops[i]
		if lp.ID != d.Loop || lp.Label != d.Label || lp.VF != d.VF || lp.IF != d.IF ||
			lp.Cycles != d.Cycles || lp.Speedup != d.PredictedSpeedup {
			t.Errorf("loop %d: adapter %+v differs from decision %+v", i, lp, d)
		}
	}
}

// countingCache is a LoopCache that records traffic.
type countingCache struct {
	mu                 sync.Mutex
	decisions          map[string][2]int
	embeds             map[string][]float64
	decHits, decMisses int
	embHits, embMisses int
	decPuts, embPuts   int
}

func newCountingCache() *countingCache {
	return &countingCache{decisions: map[string][2]int{}, embeds: map[string][]float64{}}
}

func (c *countingCache) GetDecision(key string) (int, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.decisions[key]
	if ok {
		c.decHits++
	} else {
		c.decMisses++
	}
	return d[0], d[1], ok
}

func (c *countingCache) PutDecision(key string, vf, ifc int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.decPuts++
	c.decisions[key] = [2]int{vf, ifc}
}

func (c *countingCache) GetEmbed(key string) ([]float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.embeds[key]
	if ok {
		c.embHits++
	} else {
		c.embMisses++
	}
	return v, ok
}

func (c *countingCache) PutEmbed(key string, vec []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.embPuts++
	c.embeds[key] = vec
}

func TestPredictLoopsDecisionCacheServesLoopPurePolicies(t *testing.T) {
	fw := versionedFramework(t)
	cache := newCountingCache()
	ctx := context.Background()

	first, err := fw.PredictLoops(ctx, twoLoopSrc, nil, WithPolicyName("rl"), WithLoopCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if cache.decPuts != 2 {
		t.Errorf("first call cached %d decisions, want 2", cache.decPuts)
	}
	if cache.embPuts != 2 {
		t.Errorf("first call cached %d embeddings, want 2", cache.embPuts)
	}

	// A whitespace/comment edit keeps LoopIDs stable, so the cache must hit
	// even though the source bytes changed.
	edited := "// reformatted\n" + strings.ReplaceAll(twoLoopSrc, "    ", "  ")
	second, err := fw.PredictLoops(ctx, edited, nil, WithPolicyName("rl"), WithLoopCache(cache))
	if err != nil {
		t.Fatal(err)
	}
	if cache.decHits != 2 {
		t.Errorf("second call hit the decision cache %d times, want 2", cache.decHits)
	}
	if cache.decPuts != 2 {
		t.Errorf("second call re-cached decisions (%d puts)", cache.decPuts)
	}
	for i := range first.Loops {
		f, s := first.Loops[i], second.Loops[i]
		if f.Loop != s.Loop || f.VF != s.VF || f.IF != s.IF {
			t.Errorf("loop %d: cached decision differs: %+v vs %+v", i, f, s)
		}
	}
}

func TestPredictLoopsCacheIgnoredForContextDependentPolicies(t *testing.T) {
	fw := versionedFramework(t)
	cache := newCountingCache()
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := fw.PredictLoops(ctx, twoLoopSrc, nil, WithPolicyName("costmodel"), WithLoopCache(cache)); err != nil {
			t.Fatal(err)
		}
	}
	// costmodel decides from the lowered program, not the loop alone, so its
	// decisions must never be memoized per loop.
	if cache.decPuts != 0 || cache.decHits != 0 {
		t.Errorf("context-dependent policy used the decision cache (puts=%d hits=%d)", cache.decPuts, cache.decHits)
	}
}

func TestPredictLoopsCacheRequiresModelVersion(t *testing.T) {
	fw := New(DefaultConfig()) // no checkpoint: ModelVersion is empty
	cache := newCountingCache()
	if _, err := fw.PredictLoops(context.Background(), twoLoopSrc, nil,
		WithPolicyName("costmodel"), WithLoopCache(cache)); err != nil {
		t.Fatal(err)
	}
	if cache.embPuts != 0 || cache.decPuts != 0 {
		t.Errorf("unversioned framework populated the loop cache (emb=%d dec=%d)", cache.embPuts, cache.decPuts)
	}
}
