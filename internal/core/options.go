package core

import (
	"neurovec/internal/code2vec"
	"neurovec/internal/lower"
	"neurovec/internal/machine"
	"neurovec/internal/sim"
)

// Option tweaks a framework configuration at construction time. Options are
// the ergonomic path for callers that want the defaults with a few fields
// changed; assembling a full Config by hand remains supported:
//
//	fw := core.New(core.DefaultConfig(), core.WithSeed(7), core.WithArch(myArch))
type Option func(*Config)

// WithArch targets a different machine model. The simulator follows the
// architecture unless WithSimConfig overrides it afterwards.
func WithArch(a *machine.Arch) Option {
	return func(c *Config) {
		c.Arch = a
		c.Sim.Arch = a
	}
}

// WithSeed seeds every stochastic component (embedding init, RL training,
// stochastic policies).
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// WithEmbedConfig replaces the code2vec embedding configuration.
func WithEmbedConfig(e code2vec.Config) Option {
	return func(c *Config) { c.Embed = e }
}

// WithSimConfig replaces the simulator configuration.
func WithSimConfig(s sim.Config) Option {
	return func(c *Config) { c.Sim = s }
}

// WithLowerOptions replaces the lowering options (runtime parameter values,
// unrolling behaviour).
func WithLowerOptions(o lower.Options) Option {
	return func(c *Config) { c.Lower = o }
}

// WithCompileBudget sets the Section 3.4 compile-time guardrail: factor is
// the allowed blowup over the baseline compile time, penalty the reward a
// configuration that exceeds it receives.
func WithCompileBudget(factor, penalty float64) Option {
	return func(c *Config) {
		c.CompileTimeoutFactor = factor
		c.TimeoutPenalty = penalty
	}
}
