package core

import (
	"neurovec/internal/api"
	"neurovec/internal/obs"
)

// TraceSpans converts a finished obs.Trace into the wire form carried by
// api.CompileResponse.Trace. It lives here because core is the one package
// that already speaks both vocabularies: the service and the CLI call it to
// attach trace blocks without importing obs types into their wire handling.
func TraceSpans(t *obs.Trace) []api.TraceSpan {
	if t == nil {
		return nil
	}
	records := t.Spans()
	if len(records) == 0 {
		return nil
	}
	out := make([]api.TraceSpan, len(records))
	for i, r := range records {
		out[i] = api.TraceSpan{
			Name:           r.Name,
			Detail:         r.Detail,
			StartMicros:    r.Start.Microseconds(),
			DurationMicros: r.Duration.Microseconds(),
			Depth:          r.Depth,
		}
	}
	return out
}
