package core

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"neurovec/internal/code2vec"
	"neurovec/internal/extractor"
	"neurovec/internal/lang"
	"neurovec/internal/nn"
	"neurovec/internal/rl"
)

// modelHeader stores the configuration needed to rebuild the networks
// before loading their weights.
type modelHeader struct {
	Embed code2vec.Config
	RL    rl.Config
	// Version is a fingerprint of the saved weights, stamped by SaveModel.
	// It identifies a checkpoint (for cache keys, /healthz, reload logs)
	// without the cost of re-hashing at load time. A header with an empty
	// Version is re-fingerprinted on load.
	Version string
}

// SaveModel writes the trained embedder + agent (configs and weights) to w.
// The paper's deployment story — "once the model is trained it can be
// plugged in as is for inference without further retraining" — is this
// snapshot.
func (f *Framework) SaveModel(w io.Writer) error { return f.SaveModelWith(w, nil) }

// SaveModelWith is SaveModel with an optional extra section appended to the
// same gob stream — the hook the training pipeline uses to store optimizer
// state and progress after the weights. Checkpoints written this way remain
// plain model snapshots to every reader that ignores the extra section
// (LoadModel, `neurovec serve -model`, `annotate -load`): loading simply
// stops after the weights.
func (f *Framework) SaveModelWith(w io.Writer, extra func(enc *gob.Encoder) error) error {
	if f.agent == nil {
		return fmt.Errorf("core: no trained agent to save")
	}
	f.modelVersion = fingerprintParams(f.agent.Params())
	enc := gob.NewEncoder(w)
	if err := enc.Encode(modelHeader{Embed: f.Cfg.Embed, RL: f.agent.Cfg, Version: f.modelVersion}); err != nil {
		return fmt.Errorf("core: encode header: %w", err)
	}
	// The agent's parameter set already includes the embedder's parameters
	// (end-to-end training), so one snapshot covers everything. Use the
	// same encoder: header and weights share one gob stream.
	if err := nn.EncodeParams(enc, f.agent.Params()); err != nil {
		return err
	}
	if extra != nil {
		return extra(enc)
	}
	return nil
}

// LoadModel restores a snapshot produced by SaveModel. The framework's
// loaded units are preserved; the embedder and agent are rebuilt with the
// stored configuration and weights. Trailing checkpoint sections (training
// state written by SaveModelWith) are ignored.
func (f *Framework) LoadModel(r io.Reader) error { return f.LoadModelWith(r, nil) }

// LoadModelWith is LoadModel with an optional extra section read from the
// same gob stream after the weights — the counterpart of SaveModelWith used
// by training resume. The callback sees the stream positioned exactly where
// the save-side callback wrote.
func (f *Framework) LoadModelWith(r io.Reader, extra func(dec *gob.Decoder) error) error {
	dec := gob.NewDecoder(r)
	var h modelHeader
	if err := dec.Decode(&h); err != nil {
		return fmt.Errorf("core: decode header: %w", err)
	}
	f.Cfg.Embed = h.Embed
	f.embed = code2vec.NewModel(h.Embed)
	f.agent = rl.NewAgent(&embedAdapter{fw: f}, h.RL)
	if err := nn.DecodeParams(dec, f.agent.Params()); err != nil {
		return err
	}
	f.modelVersion = h.Version
	if f.modelVersion == "" {
		f.modelVersion = fingerprintParams(f.agent.Params())
	}
	// Context extraction depends on Embed config; re-extract for already
	// loaded units so embeddings match the restored model.
	for _, u := range f.units {
		u.Ctxs = reextract(u, h.Embed)
	}
	// Cached policy instances may hold the previous weights (the NNS index
	// embeds with them); resolve afresh against the restored model.
	f.invalidatePolicies()
	if extra != nil {
		return extra(dec)
	}
	return nil
}

// reextract recomputes a unit's path contexts under a (possibly different)
// embedding configuration.
func reextract(u *Unit, cfg code2vec.Config) []code2vec.Context {
	prog, err := lang.Parse(u.Source)
	if err != nil {
		return u.Ctxs
	}
	for _, info := range extractor.Loops(prog) {
		if info.Label == u.Loop.Label {
			return code2vec.ExtractContexts(info.Outermost, cfg)
		}
	}
	return u.Ctxs
}

// ModelVersion returns the fingerprint of the model most recently saved or
// loaded, or "" if the framework has neither saved nor loaded a snapshot
// (e.g. mid-training). The serving layer keys its response cache on this
// value so a hot-reloaded checkpoint invalidates stale entries.
func (f *Framework) ModelVersion() string { return f.modelVersion }

// fingerprintParams hashes every parameter's name and weights into a short
// stable hex fingerprint.
func fingerprintParams(params []*nn.Param) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range params {
		io.WriteString(h, p.Name)
		for _, w := range p.W {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(w))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// SaveModelFile and LoadModelFile are path conveniences.
func (f *Framework) SaveModelFile(path string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if err := f.SaveModel(fh); err != nil {
		return err
	}
	return fh.Close()
}

// LoadModelFile restores a snapshot from a file.
func (f *Framework) LoadModelFile(path string) error {
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	return f.LoadModel(fh)
}
