package core

import (
	"context"
	"testing"

	"neurovec/internal/obs"
)

// pipelineStages is every compile-pipeline stage the instrumentation must
// report — the contract the /metrics stage histogram and ?trace=1 build on.
var pipelineStages = []string{"compile", "parse", "extract", "lower", "deps", "sim_baseline", "decide", "sim"}

func TestPredictLoopsEmitsPipelineSpans(t *testing.T) {
	fw := New(DefaultConfig())
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(context.Background(), tr, nil)
	if _, err := fw.PredictLoops(ctx, twoLoopSrc, nil, WithPolicyName("costmodel")); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byName := map[string]int{}
	for _, s := range spans {
		byName[s.Name]++
		if s.Duration < 0 || s.Start < 0 {
			t.Errorf("span %s has negative timing: %+v", s.Name, s)
		}
	}
	for _, stage := range pipelineStages {
		if byName[stage] == 0 {
			t.Errorf("no %q span recorded; got %v", stage, byName)
		}
	}
	// Two loops: one decide and one per-loop sim each, plus the combined sim.
	if byName["decide"] != 2 {
		t.Errorf("decide spans = %d, want 2", byName["decide"])
	}
	if byName["sim"] != 3 {
		t.Errorf("sim spans = %d, want 3 (two per-loop + combined)", byName["sim"])
	}
	// The pipeline stages nest under the root compile span.
	for _, s := range spans {
		if s.Name == "compile" && s.Depth != 0 {
			t.Errorf("compile span depth = %d, want 0", s.Depth)
		}
		if s.Name == "parse" && s.Depth != 1 {
			t.Errorf("parse span depth = %d, want 1", s.Depth)
		}
	}
	if ts := TraceSpans(tr); len(ts) != len(spans) {
		t.Errorf("TraceSpans lost records: %d != %d", len(ts), len(spans))
	}
}

func TestPredictLoopsEmbedSpanOnLearnedPolicy(t *testing.T) {
	fw := versionedFramework(t)
	tr := obs.NewTrace()
	ctx := obs.WithRecorder(context.Background(), tr, nil)
	if _, err := fw.PredictLoops(ctx, twoLoopSrc, nil); err != nil {
		t.Fatal(err)
	}
	embeds := 0
	for _, s := range tr.Spans() {
		if s.Name == "embed" {
			embeds++
			if s.Detail == "" {
				t.Errorf("embed span missing loop detail")
			}
		}
	}
	if embeds != 2 {
		t.Errorf("embed spans = %d, want 2 (one per loop)", embeds)
	}
}

func TestTraceSpansNilSafe(t *testing.T) {
	if got := TraceSpans(nil); got != nil {
		t.Errorf("TraceSpans(nil) = %v, want nil", got)
	}
	if got := TraceSpans(obs.NewTrace()); got != nil {
		t.Errorf("TraceSpans(empty) = %v, want nil", got)
	}
}
