package core

import (
	"sync"

	"neurovec/internal/api"
)

// memoKey identifies one fully-cacheable PredictLoops call: same checkpoint,
// same policy, same source text, same diagnostic file attribution. Calls
// with pins, parameter overrides, or strict sema never reach the memo.
type memoKey struct {
	version string
	policy  string
	file    string
	source  string
}

// ResponseMemo is an in-process whole-response cache for PredictLoops: a hit
// returns the previously computed *api.CompileResponse without parsing,
// lowering, or simulating anything — and without allocating, which is what
// makes a cached-model decision zero-alloc in steady state.
//
// Responses served from the memo are SHARED and must be treated as
// immutable by every caller. The serving layer keeps its own byte-level
// response cache precisely because it stamps per-request fields
// (RequestID, Trace) into responses; the memo is for in-process callers —
// embedding the framework as a library, the eval harness, the bench suite.
//
// Eviction is two-generation (the same scheme as the service's LoopCache):
// when the current generation fills up, it becomes the previous one and a
// fresh map starts; a hit in the previous generation promotes the entry.
// Safe for concurrent use.
type ResponseMemo struct {
	mu        sync.Mutex
	cap       int
	cur, prev map[memoKey]*api.CompileResponse
}

// NewResponseMemo builds a memo holding at most roughly 2*perGen responses.
// perGen <= 0 selects a small default suitable for benchmark fixtures.
func NewResponseMemo(perGen int) *ResponseMemo {
	if perGen <= 0 {
		perGen = 128
	}
	return &ResponseMemo{cap: perGen, cur: make(map[memoKey]*api.CompileResponse, perGen)}
}

func (m *ResponseMemo) get(k memoKey) (*api.CompileResponse, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if r, ok := m.cur[k]; ok {
		return r, true
	}
	if r, ok := m.prev[k]; ok {
		// Promote so another generation turnover keeps the hot entry. The
		// steady-state hit path (entry already current) never writes.
		m.cur[k] = r
		return r, true
	}
	return nil, false
}

func (m *ResponseMemo) put(k memoKey, r *api.CompileResponse) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.cur) >= m.cap {
		m.prev = m.cur
		m.cur = make(map[memoKey]*api.CompileResponse, m.cap)
	}
	m.cur[k] = r
}

// Len reports how many responses the memo currently holds (diagnostics).
func (m *ResponseMemo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.cur) + len(m.prev)
}

// WithResponseMemo serves whole PredictLoops responses from m when the call
// is fully cacheable: a fingerprinted checkpoint is loaded (ModelVersion
// non-empty), and the call carries no pins, no parameter overrides, and no
// strict-sema flag. Responses obtained through the memo are shared across
// callers and must not be mutated. Truncated (deadline-cut) responses are
// never stored.
func WithResponseMemo(m *ResponseMemo) InferOption {
	return func(o *inferOpts) { o.memo = m }
}
