//go:build race

package core

// raceEnabled reports whether the race detector is on. Under race,
// sync.Pool deliberately drops items at random to expose races, so
// steady-state zero-allocation assertions over pooled scratch are not
// meaningful and are skipped.
const raceEnabled = true
