package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"neurovec/internal/dataset"
	"neurovec/internal/nn"
	"neurovec/internal/rl"
)

func smallFramework(t *testing.T, n int) *Framework {
	t.Helper()
	cfg := DefaultConfig()
	// Small embedding keeps unit tests fast; the full 340-wide model is
	// exercised by the experiment harness and benches.
	cfg.Embed.OutDim = 48
	cfg.Embed.EmbedDim = 12
	cfg.Embed.MaxContexts = 40
	fw := New(cfg)
	if err := fw.LoadSet(dataset.Generate(dataset.GenConfig{N: n, Seed: 1})); err != nil {
		t.Fatal(err)
	}
	return fw
}

func fastRL(iters int) *rl.Config {
	c := rl.DefaultConfig(nil, nil)
	c.Batch = 96
	c.MiniBatch = 32
	c.Iterations = iters
	c.LR = 1e-3
	c.Hidden = []int{32, 32}
	return &c
}

func TestLoadSetCreatesUnits(t *testing.T) {
	fw := smallFramework(t, 30)
	if fw.NumSamples() < 30 {
		t.Fatalf("units = %d, want >= 30", fw.NumSamples())
	}
	for i, u := range fw.Units() {
		if u.Loop == nil || len(u.Ctxs) == 0 {
			t.Fatalf("unit %d (%s) incomplete", i, u.Name)
		}
		if u.baselineCycles <= 0 {
			t.Fatalf("unit %d has no baseline measurement", i)
		}
	}
}

func TestRewardSignConvention(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	fw := New(cfg)
	// The dot-product loop: baseline picks (4,2); wider is better, scalar
	// is worse.
	err := fw.LoadSource("dot", `
int vec[512];
int kernel() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	atBaseline := fw.Reward(0, 4, 2)
	if atBaseline != 0 {
		t.Errorf("reward at the baseline's own choice = %g, want 0", atBaseline)
	}
	scalar := fw.Reward(0, 1, 1)
	if scalar >= 0 {
		t.Errorf("reward for scalar = %g, want negative", scalar)
	}
	wide := fw.Reward(0, 32, 1)
	if wide <= 0 {
		t.Errorf("reward for wide vectorization = %g, want positive", wide)
	}
}

func TestCompileTimeoutPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	fw := New(cfg)
	// A big-bodied loop whose (64,16) build blows the compile budget.
	err := fw.LoadSource("bigbody", `
int a[4096];
int b[4096];
int c[4096];
int d[4096];
void kernel() {
    for (int i = 0; i < 4096; i++) {
        a[i] = b[i] * c[i] + d[i] * b[i] + c[i] * d[i] + b[i] + c[i] - d[i] + (b[i] >> 2) + (c[i] & 15);
    }
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := fw.Reward(0, 64, 16)
	if r != cfg.TimeoutPenalty {
		t.Errorf("reward at (64,16) = %g, want the timeout penalty %g", r, cfg.TimeoutPenalty)
	}
	if r2 := fw.Reward(0, 8, 2); r2 == cfg.TimeoutPenalty {
		t.Error("moderate factors must not trip the compile timeout")
	}
}

func TestBruteForceLabelBeatsBaseline(t *testing.T) {
	fw := smallFramework(t, 12)
	for i := 0; i < fw.NumSamples(); i++ {
		vf, ifc := fw.BruteForceLabel(i)
		if got := fw.Cycles(i, vf, ifc); got > fw.BaselineCycles(i)+1e-9 {
			t.Errorf("unit %d: brute force (%d,%d)=%.0f worse than baseline %.0f",
				i, vf, ifc, got, fw.BaselineCycles(i))
		}
	}
}

func TestTrainImprovesReward(t *testing.T) {
	fw := smallFramework(t, 60)
	stats := fw.Train(fastRL(12))
	first, last := stats.RewardMean[0], stats.RewardMean[len(stats.RewardMean)-1]
	if last <= first {
		t.Fatalf("training did not improve reward: %.3f -> %.3f", first, last)
	}
	t.Logf("reward mean: %.3f -> %.3f over %d iterations", first, last, len(stats.RewardMean))
}

func TestPredictWithoutTraining(t *testing.T) {
	fw := smallFramework(t, 5)
	if _, _, err := fw.Predict(0); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("untrained predict err = %v, want ErrNoAgent", err)
	}
}

func TestAnnotateSourceInjectsPragmas(t *testing.T) {
	fw := smallFramework(t, 40)
	fw.Train(fastRL(8))
	src := `
float xs[1024];
float ys[1024];
void kernel(float a) {
    for (int i = 0; i < 1024; i++) {
        ys[i] = a * xs[i] + ys[i];
    }
}
`
	unitsBefore := fw.NumSamples()
	out, decisions, err := fw.AnnotateSource(context.Background(), src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(decisions) != 1 {
		t.Fatalf("decisions = %v", decisions)
	}
	if !strings.Contains(out, "#pragma clang loop vectorize_width(") {
		t.Fatalf("no pragma in annotated output:\n%s", out)
	}
	if fw.NumSamples() != unitsBefore {
		t.Errorf("annotation leaked %d units", fw.NumSamples()-unitsBefore)
	}
}

func TestEmbeddingStableAndSized(t *testing.T) {
	fw := smallFramework(t, 6)
	e1 := fw.Embedding(0)
	e2 := fw.Embedding(0)
	if len(e1) != fw.Cfg.Embed.OutDim {
		t.Fatalf("embedding dim = %d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("embedding not deterministic")
		}
	}
}

func TestMultiLoopProgramYieldsMultipleUnits(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	fw := New(cfg)
	err := fw.LoadSource("pair", `
int a[256];
int b[256];
void kernel() {
    for (int i = 0; i < 256; i++) {
        a[i] = i;
    }
    for (int i = 0; i < 256; i++) {
        b[i] = a[i] * 2;
    }
}
`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fw.NumSamples() != 2 {
		t.Fatalf("units = %d, want 2", fw.NumSamples())
	}
}

func TestLoadRejectsLooplessPrograms(t *testing.T) {
	fw := New(DefaultConfig())
	if err := fw.LoadSource("flat", "int f() { return 42; }", nil); err == nil {
		t.Fatal("expected error for loopless program")
	}
}

func TestContinueTrainingRequiresAgent(t *testing.T) {
	fw := smallFramework(t, 5)
	if _, err := fw.ContinueTraining(2); err == nil {
		t.Fatal("expected error before initial training")
	}
}

func TestOnlineTrainingAdaptsToNewLoops(t *testing.T) {
	// The paper's footnote 2: keep online training active so the agent
	// learns newly observed loops. Train on the corpus, then continue
	// training after loading unseen benchmarks; the policy over the new
	// units must improve (or at least not regress) in simulated cycles.
	fw := smallFramework(t, 60)
	fw.Train(fastRL(8))

	start := fw.NumSamples()
	if err := fw.LoadBenchmarks(dataset.PolyBench()); err != nil {
		t.Fatal(err)
	}
	end := fw.NumSamples()
	cyclesAt := func() float64 {
		total := 0.0
		for i := start; i < end; i++ {
			vf, ifc, err := fw.Predict(i)
			if err != nil {
				t.Fatal(err)
			}
			total += fw.Cycles(i, vf, ifc)
		}
		return total
	}
	before := cyclesAt()
	if _, err := fw.ContinueTraining(6); err != nil {
		t.Fatal(err)
	}
	after := cyclesAt()
	if after > before*1.05 {
		t.Errorf("online training regressed new loops: %.3g -> %.3g cycles", before, after)
	}
	t.Logf("new-loop cycles: %.3g -> %.3g (%.2f%% change)", before, after, 100*(after/before-1))
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"a.c":      "int a[64];\nvoid f() { for (int i = 0; i < 64; i++) { a[i] = i; } }\n",
		"noloop.c": "int g() { return 7; }\n",
		"b.c":      "float z[32];\nvoid h() { for (int i = 0; i < 32; i++) { z[i] = 0; } }\n",
		"skip.txt": "not C at all",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fw := New(DefaultConfig())
	n, err := fw.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d files, want 2 (loopless and non-C skipped)", n)
	}
	if fw.NumSamples() != 2 {
		t.Fatalf("units = %d, want 2", fw.NumSamples())
	}
}

func TestLoadDirNested(t *testing.T) {
	dir := t.TempDir()
	deep := filepath.Join(dir, "sub", "deeper")
	if err := os.MkdirAll(deep, 0o755); err != nil {
		t.Fatal(err)
	}
	loop := func(name string) string {
		return "int " + name + "[64];\nvoid f_" + name + "() { for (int i = 0; i < 64; i++) { " + name + "[i] = i; } }\n"
	}
	files := map[string]string{
		filepath.Join(dir, "a.c"):             loop("a"),
		filepath.Join(dir, "sub", "b.c"):      loop("b"),
		filepath.Join(deep, "c.c"):            loop("c"),
		filepath.Join(dir, "sub", "noloop.c"): "int g() { return 7; }\n", // ErrNoLoops: skipped, not fatal
		filepath.Join(dir, "sub", "notes.md"): "# not C\n",               // non-.c: ignored
	}
	for path, src := range files {
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fw := New(DefaultConfig())
	n, err := fw.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d files, want 3 (nested dirs walked, loopless and non-C skipped)", n)
	}
	if fw.NumSamples() != 3 {
		t.Fatalf("units = %d, want 3", fw.NumSamples())
	}
}

func TestLoadDirPropagatesParseErrors(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.c"), []byte("void f() { for }"), 0o644); err != nil {
		t.Fatal(err)
	}
	fw := New(DefaultConfig())
	if _, err := fw.LoadDir(dir); err == nil {
		t.Fatal("expected a parse error to propagate (only ErrNoLoops is skippable)")
	}
}

func TestContinueTrainingKeepsConfigIterations(t *testing.T) {
	fw := smallFramework(t, 20)
	fw.Train(fastRL(2))
	want := fw.Agent().Cfg.Iterations
	if _, err := fw.ContinueTraining(5); err != nil {
		t.Fatal(err)
	}
	if got := fw.Agent().Cfg.Iterations; got != want {
		t.Fatalf("ContinueTraining mutated Cfg.Iterations: %d -> %d", want, got)
	}
}

func TestNewWithOptions(t *testing.T) {
	fw := New(DefaultConfig(), WithSeed(9), WithCompileBudget(5, -4))
	if fw.Cfg.Seed != 9 || fw.Cfg.Embed.Seed != 9 {
		t.Fatalf("WithSeed not applied: seed=%d embed seed=%d", fw.Cfg.Seed, fw.Cfg.Embed.Seed)
	}
	if fw.Cfg.CompileTimeoutFactor != 5 || fw.Cfg.TimeoutPenalty != -4 {
		t.Fatalf("WithCompileBudget not applied: %+v", fw.Cfg)
	}
	if fw.Cfg.Sim.Arch == nil {
		t.Fatal("simulator arch not defaulted")
	}
}

func TestExplainAndBaselineChoice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Embed.OutDim = 32
	cfg.Embed.EmbedDim = 8
	fw := New(cfg)
	if err := fw.LoadSource("dot", `
int vec[512];
int kernel() {
    int sum = 0;
    for (int i = 0; i < 512; i++) {
        sum += vec[i] * vec[i];
    }
    return sum;
}
`, nil); err != nil {
		t.Fatal(err)
	}
	vf, ifc := fw.BaselineChoice(0)
	if vf != 4 || ifc != 2 {
		t.Fatalf("baseline choice = (%d,%d), want (4,2)", vf, ifc)
	}
	b := fw.Explain(0, vf, ifc)
	if b.Total <= 0 || b.Bound == "" {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestEmbedSource(t *testing.T) {
	fw := smallFramework(t, 3)
	vec, err := fw.EmbedSource(`
int a[64];
void f() {
    for (int i = 0; i < 64; i++) {
        a[i] = i;
    }
}
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != fw.Cfg.Embed.OutDim {
		t.Fatalf("embedding dim = %d", len(vec))
	}
	if _, err := fw.EmbedSource("int f() { return 1; }"); err == nil {
		t.Fatal("expected error for loopless source")
	}
	if _, err := fw.EmbedSource("not C"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAnnotateSourceErrors(t *testing.T) {
	fw := smallFramework(t, 10)
	ctx := context.Background()
	if _, _, err := fw.AnnotateSource(ctx, "int a[4]; void f() { for (int i = 0; i < 4; i++) { a[i] = i; } }", nil); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("err without a trained agent = %v, want ErrNoAgent", err)
	}
	fw.Train(fastRL(2))
	if _, _, err := fw.AnnotateSource(ctx, "not C at all", nil); err == nil {
		t.Fatal("expected parse error")
	}
	if _, _, err := fw.AnnotateSource(ctx, "int f() { return 1; }", nil); err == nil {
		t.Fatal("expected no-loops error")
	}
}

func TestLoadSourceBadInput(t *testing.T) {
	fw := New(DefaultConfig())
	if err := fw.LoadSource("bad", "void f() { for }", nil); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestTrainWithEmbedderDefaults(t *testing.T) {
	fw := smallFramework(t, 20)
	emb := &fixedEmbedder{dim: 8}
	stats := fw.TrainWithEmbedder(emb, fastRL(2))
	if len(stats.RewardMean) != 2 {
		t.Fatalf("iterations = %d", len(stats.RewardMean))
	}
	// Config with empty action spaces must be filled from the arch.
	cfg := fastRL(1)
	cfg.VFs, cfg.IFs = nil, nil
	stats = fw.TrainWithEmbedder(emb, cfg)
	if len(stats.RewardMean) != 1 {
		t.Fatal("training with defaulted spaces failed")
	}
}

type fixedEmbedder struct{ dim int }

func (e *fixedEmbedder) Embed(sample int) ([]float64, any) {
	v := make([]float64, e.dim)
	v[sample%e.dim] = 1
	return v, nil
}
func (e *fixedEmbedder) Backward(any, []float64) {}
func (e *fixedEmbedder) Params() []*nn.Param     { return nil }
func (e *fixedEmbedder) Dim() int                { return e.dim }

func TestRewardDeterministic(t *testing.T) {
	fw := smallFramework(t, 4)
	if fw.Reward(1, 8, 2) != fw.Reward(1, 8, 2) {
		t.Fatal("reward not deterministic")
	}
}
