package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"neurovec/internal/api"
	"neurovec/internal/costmodel"
	"neurovec/internal/diag"
	"neurovec/internal/extractor"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lang/sema"
	"neurovec/internal/lower"
	"neurovec/internal/nn"
	"neurovec/internal/obs"
	"neurovec/internal/policy"
	"neurovec/internal/sim"
	"neurovec/internal/vectorizer"
)

// This file is the framework's stateless inference path: everything here
// builds per-request state (parse, lower, extract, simulate) and touches the
// framework only through read-only views — the configuration and the trained
// weights. That makes PredictLoops, PredictSource, SweepSource,
// AnnotateSource and EmbedSource safe for any number of concurrent callers,
// which is what the serving layer (internal/service) relies on. The mutating
// APIs (LoadSource, Train, LoadModel, ...) remain single-threaded setup
// operations.
//
// PredictLoops is the loop-granular entrypoint and speaks the versioned v2
// wire schema (package neurovec/internal/api) directly: one api.Decision per
// innermost loop with a stable LoopID, provenance, and optional per-loop
// pins. PredictSource and AnnotateSource are thin adapters over it;
// SweepSource shares its compile pipeline.
//
// Inference is policy-parameterized: the decision for each loop comes from a
// policy.Policy — the trained agent by default, or any registered method
// (costmodel, brute, random, polly, nns) selected with WithPolicy /
// WithPolicyName. The context is threaded into every Decide call so
// deadline-aware policies (brute force) can return their best answer so far
// instead of blowing the caller's latency budget.

// InferOption configures one PredictLoops / PredictSource / AnnotateSource /
// SweepSource call.
type InferOption func(*inferOpts)

type inferOpts struct {
	pol     policy.Policy
	polName string
	pins    []api.Pin
	cache   LoopCache
	memo    *ResponseMemo
	strict  bool
	file    string
}

// WithPolicy uses a concrete policy instance for this call — the hook for
// policies that are not in the registry (e.g. a trained ranker model's
// Policy()).
func WithPolicy(p policy.Policy) InferOption {
	return func(o *inferOpts) { o.pol = p }
}

// WithPolicyName resolves the named policy from the registry, bound to this
// framework, at call time. Unknown names fail the call with
// policy.ErrUnknown.
func WithPolicyName(name string) InferOption {
	return func(o *inferOpts) { o.polName = name }
}

// WithPins forces individual loops to explicit factors: pinned loops bypass
// the decision policy entirely (their Decision carries Origin "pin"), while
// the rest of the program is decided as usual. A pin addressing a loop the
// program does not contain, or factors outside the target architecture's
// action space, fails the call with an error wrapping ErrBadPin.
func WithPins(pins []api.Pin) InferOption {
	return func(o *inferOpts) { o.pins = append(o.pins, pins...) }
}

// WithLoopCache serves per-loop state from c across calls: code vectors for
// every policy, and (VF, IF) decisions for policies that are pure functions
// of the loop (policy.IsLoopPure). Keys embed the checkpoint fingerprint and
// the stable LoopID, so whitespace-edited re-requests still hit and a
// hot-reload can never serve stale state; when the framework has no
// fingerprinted checkpoint the cache is bypassed entirely.
func WithLoopCache(c LoopCache) InferOption {
	return func(o *inferOpts) { o.cache = c }
}

// LoopCache is the per-loop memo the serving layer plugs into inference.
// Implementations must be safe for concurrent use; both sides treat entries
// as immutable after Put.
type LoopCache interface {
	// GetDecision / PutDecision memoize a loop-pure policy's (VF, IF).
	GetDecision(key string) (vf, ifc int, ok bool)
	PutDecision(key string, vf, ifc int)
	// GetEmbed / PutEmbed memoize the learned code vector for a loop.
	GetEmbed(key string) ([]float64, bool)
	PutEmbed(key string, vec []float64)
}

// ErrBadPin is wrapped by pin-validation failures: a pin addressing a loop
// the program does not contain, or factors outside the architecture's
// action space. The serving layer maps it to HTTP 400.
var ErrBadPin = errors.New("bad pin")

// ErrSemantic is the sentinel every strict-mode semantic rejection wraps;
// callers match it with errors.Is and recover the diagnostics by unwrapping
// to *SemanticError with errors.As. The serving layer maps it to HTTP 422
// with the diagnostics in the response body.
var ErrSemantic = errors.New("semantic errors")

// SemanticError rejects a strict-mode compile whose source carries
// error-severity semantic diagnostics. Diags holds every finding (warnings
// included) in deterministic order.
type SemanticError struct {
	Diags diag.List
}

// Error summarises the rejection with the first error's rendered form.
func (e *SemanticError) Error() string {
	errs := e.Diags.Errors()
	if len(errs) == 0 {
		return "core: semantic errors"
	}
	msg := fmt.Sprintf("core: %d semantic error(s): %s", len(errs), errs[0].String())
	return msg
}

// Unwrap ties the typed error to the ErrSemantic sentinel.
func (e *SemanticError) Unwrap() error { return ErrSemantic }

// WithStrictSema rejects sources carrying error-severity semantic
// diagnostics with a *SemanticError instead of compiling them (lax mode, the
// default, compiles anyway and annotates the response). Warnings never
// reject in either mode.
func WithStrictSema() InferOption {
	return func(o *inferOpts) { o.strict = true }
}

// WithSourceName attributes diagnostics to the given file name. Purely
// cosmetic: positions are unaffected.
func WithSourceName(file string) InferOption {
	return func(o *inferOpts) { o.file = file }
}

// inferOptsPool recycles the options struct across PredictLoops calls; the
// option closures receive a pointer, which would otherwise heap-allocate the
// struct on every call.
var inferOptsPool = sync.Pool{New: func() any { return new(inferOpts) }}

func gatherOpts(opts []InferOption) *inferOpts {
	o := inferOptsPool.Get().(*inferOpts)
	*o = inferOpts{pins: o.pins[:0]}
	for _, opt := range opts {
		opt(o)
	}
	return o
}

func releaseOpts(o *inferOpts) { inferOptsPool.Put(o) }

// resolvePolicy picks the policy for a call: an explicit instance wins, then
// a registry name, then fallback (DefaultPolicy for prediction, "" meaning
// none for sweeps).
func (f *Framework) resolvePolicy(o *inferOpts, fallback string) (policy.Policy, error) {
	if o.pol != nil {
		return o.pol, nil
	}
	name := o.polName
	if name == "" {
		name = fallback
	}
	if name == "" {
		return nil, nil
	}
	return f.Policy(name)
}

// compiled is the per-request state every inference entrypoint builds once:
// the parsed program, its extraction targets with stable loop identities,
// the lowered IR, and the baseline plan/cycle anchors.
type compiled struct {
	prog       *lang.Program
	infos      []extractor.LoopInfo
	ids        map[string]api.LoopID
	irp        *ir.Program
	basePlans  map[string]*vectorizer.Plan
	baseCycles float64
	diags      diag.List
}

// compileSource parses, extracts, and lowers one source program and
// simulates its baseline — the shared front half of PredictLoops and
// SweepSource. It builds only per-request state. Every stage runs under an
// obs span, so an armed context (service requests, traced CLI calls) gets
// per-stage latency for free and an unarmed one pays nothing.
func (f *Framework) compileSource(ctx context.Context, source string, params map[string]int64, o *inferOpts) (*compiled, error) {
	_, sp := obs.StartSpan(ctx, "parse")
	prog, err := lang.ParseFile(o.file, source)
	sp.End()
	if err != nil {
		return nil, err
	}
	// Semantic analysis runs before any lowering: strict mode rejects
	// programs with error diagnostics outright, lax mode annotates the
	// response and compiles anyway. Either way the proven per-loop facts
	// feed the lowering below, which is what lets the dependence analysis
	// accept provably safe loops it would otherwise reject.
	_, sp = obs.StartSpan(ctx, "sema")
	sinfo := sema.Check(o.file, prog)
	sp.End()
	if o.strict && sinfo.Diags.HasErrors() {
		return nil, &SemanticError{Diags: sinfo.Diags}
	}
	_, sp = obs.StartSpan(ctx, "extract")
	infos := extractor.Loops(prog)
	ids := api.LoopIDs(prog)
	sp.End()
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no loops in source: %w", ErrNoLoops)
	}
	opts := f.Cfg.Lower
	if params != nil {
		opts.ParamValues = params
	}
	opts.Facts = sinfo.Facts
	_, sp = obs.StartSpan(ctx, "lower")
	irp, err := lower.Program(prog, opts)
	sp.End()
	if err != nil {
		return nil, err
	}
	_, sp = obs.StartSpan(ctx, "deps")
	basePlans := costmodel.Plans(irp, f.Cfg.Arch)
	sp.End()
	_, sp = obs.StartSpan(ctx, "sim_baseline")
	baseCycles := sim.Program(irp, basePlans, f.Cfg.Sim).Cycles
	sp.End()
	return &compiled{
		prog:       prog,
		infos:      infos,
		ids:        ids,
		irp:        irp,
		basePlans:  basePlans,
		baseCycles: baseCycles,
		diags:      sinfo.Diags,
	}, nil
}

// resolvePins maps each pin onto the parser label of the loop it addresses.
// Every pin must address exactly one existing loop with legal factors.
func (f *Framework) resolvePins(c *compiled, pins []api.Pin) (map[string]api.Pin, error) {
	if len(pins) == 0 {
		return nil, nil
	}
	byID := make(map[api.LoopID]string, len(c.ids))
	for label, id := range c.ids {
		byID[id] = label
	}
	labels := make(map[string]bool, len(c.infos))
	for _, info := range c.infos {
		labels[info.Label] = true
	}
	inSpace := func(v int, space []int) bool {
		for _, s := range space {
			if s == v {
				return true
			}
		}
		return false
	}
	out := make(map[string]api.Pin, len(pins))
	for _, p := range pins {
		label := p.Label
		if p.Loop != "" {
			l, ok := byID[p.Loop]
			if !ok {
				return nil, fmt.Errorf("core: %w: no loop with id %s", ErrBadPin, p.Loop)
			}
			label = l
		} else if !labels[label] {
			return nil, fmt.Errorf("core: %w: no loop with label %s", ErrBadPin, label)
		}
		if !inSpace(p.VF, f.Cfg.Arch.VFs()) || !inSpace(p.IF, f.Cfg.Arch.IFs()) {
			return nil, fmt.Errorf("core: %w: pin %s: (VF=%d, IF=%d) outside the %s action space",
				ErrBadPin, p.Addr(), p.VF, p.IF, f.Cfg.Arch.Name)
		}
		if _, dup := out[label]; dup {
			return nil, fmt.Errorf("core: %w: loop %s pinned twice", ErrBadPin, label)
		}
		out[label] = p
	}
	return out, nil
}

// PredictLoops is the loop-granular inference entrypoint: it compiles the
// source, decides every innermost loop — honoring per-loop pins, serving
// unpinned loops from the selected policy (default: the trained agent) —
// and returns the versioned per-loop response the v2 API serves verbatim.
// Safe for concurrent callers; no framework state is mutated.
func (f *Framework) PredictLoops(ctx context.Context, source string, params map[string]int64, opts ...InferOption) (*api.CompileResponse, error) {
	// The options struct is pooled: option closures take *inferOpts, which
	// would otherwise force a heap allocation per call and break the
	// memo-hit path's zero-alloc invariant.
	o := gatherOpts(opts)
	defer releaseOpts(o)
	pol, err := f.resolvePolicy(o, DefaultPolicy)
	if err != nil {
		return nil, err
	}
	// A deadline-aware policy still answers (best-so-far) under an expired
	// context; everything else fails fast before any simulation work.
	if err := ctx.Err(); err != nil && !policy.IsDeadlineAware(pol) {
		return nil, err
	}
	// Whole-response memo: a fully-cacheable call (fingerprinted checkpoint,
	// no pins/params/strict) whose answer was computed before returns the
	// shared response without compiling anything — the zero-alloc hit path.
	var mkey memoKey
	if o.memo != nil {
		if v := f.ModelVersion(); v != "" && len(o.pins) == 0 && params == nil && !o.strict {
			mkey = memoKey{version: v, policy: pol.Name(), file: o.file, source: source}
			if resp, ok := o.memo.get(mkey); ok {
				return resp, nil
			}
		} else {
			o.memo = nil
		}
	}
	ctx, root := obs.StartSpan(ctx, "compile")
	defer root.End()
	c, err := f.compileSource(ctx, source, params, o)
	if err != nil {
		return nil, err
	}
	pinned, err := f.resolvePins(c, o.pins)
	if err != nil {
		return nil, err
	}
	// Per-loop caches are only sound against a fingerprinted checkpoint:
	// an in-process framework can retrain without changing ModelVersion.
	version := f.ModelVersion()
	cache := o.cache
	if version == "" {
		cache = nil
	}
	decisionCacheable := policy.IsLoopPure(pol)

	resp := &api.CompileResponse{
		Version:        api.Version,
		ModelVersion:   version,
		Policy:         pol.Name(),
		BaselineCycles: c.baseCycles,
		Diagnostics:    c.diags,
	}
	combined := clonePlans(c.basePlans)
	// single is reused across loops (set one entry, simulate, restore):
	// cloning the whole plan map per loop made the walk O(loops^2) in map
	// copies, which dominated multi-loop files.
	single := clonePlans(c.basePlans)
	var decisions []extractor.Decision
	for _, info := range c.infos {
		loop := c.irp.FindLoop(info.Label)
		if loop == nil {
			return nil, fmt.Errorf("core: loop %s missing from IR", info.Label)
		}
		id := c.ids[info.Label]
		var vf, ifc int
		prov := api.Provenance{Origin: api.OriginPolicy, Policy: pol.Name(), ModelVersion: version}
		switch pin, isPinned := pinned[info.Label]; {
		case isPinned:
			vf, ifc = pin.VF, pin.IF
			prov = api.Provenance{Origin: api.OriginPin}
		default:
			dkey := decisionKey(version, pol.Name(), id)
			if cv, ci, ok := cachedDecision(cache, decisionCacheable, dkey); ok {
				vf, ifc = cv, ci
				break
			}
			req := f.loopRequest(source, info, c.irp, loop, c.basePlans)
			// Span wrap first, cache wrap outside it: a cache hit returns
			// before the inner closure runs, so only real code2vec forward
			// passes are timed as "embed".
			traceEmbed(ctx, req, info.Label)
			if cache != nil {
				wrapEmbed(req, cache, embedKey(version, id))
			}
			dctx, dsp := obs.StartSpan(ctx, "decide")
			dsp.Annotate(info.Label)
			d, err := safeDecide(dctx, pol, req)
			dsp.End()
			if err != nil {
				return nil, fmt.Errorf("core: policy %s on loop %s: %w", pol.Name(), info.Label, err)
			}
			vf, ifc = d.VF, d.IF
			prov.Truncated = d.Truncated
			resp.Truncated = resp.Truncated || d.Truncated
			if cache != nil && decisionCacheable && !d.Truncated {
				cache.PutDecision(dkey, vf, ifc)
			}
		}
		plan := vectorizer.New(loop, f.Cfg.Arch, vf, ifc)
		prev, hadPrev := single[info.Label]
		single[info.Label] = plan
		_, ssp := obs.StartSpan(ctx, "sim")
		ssp.Annotate(info.Label)
		cycles := sim.Program(c.irp, single, f.Cfg.Sim).Cycles
		ssp.End()
		if hadPrev {
			single[info.Label] = prev
		} else {
			delete(single, info.Label)
		}
		resp.Loops = append(resp.Loops, api.Decision{
			Loop:             id,
			Label:            info.Label,
			Func:             info.Func,
			VF:               vf,
			IF:               ifc,
			Cycles:           cycles,
			PredictedSpeedup: safeRatio(c.baseCycles, cycles),
			Provenance:       prov,
		})
		decisions = append(decisions, extractor.Decision{Label: info.Label, VF: vf, IF: ifc})
		combined[info.Label] = plan
	}
	_, ssp := obs.StartSpan(ctx, "sim")
	ssp.Annotate("combined")
	resp.PredictedCycles = sim.Program(c.irp, combined, f.Cfg.Sim).Cycles
	ssp.End()
	resp.Speedup = safeRatio(c.baseCycles, resp.PredictedCycles)
	resp.Annotated = extractor.Annotate(c.prog, decisions)
	if o.memo != nil && !resp.Truncated {
		o.memo.put(mkey, resp)
	}
	return resp, nil
}

// ErrModelShape is reported when the loaded model's layer dimensions do not
// match the observation a policy fed it — a malformed checkpoint or an
// embed-config skew. The nn package signals the mismatch with a typed panic
// (*nn.ShapeError) deep inside a forward pass; safeDecide converts it into
// this error at the core boundary so one bad request fails instead of
// crashing a serving process.
var ErrModelShape = errors.New("model/input shape mismatch")

// safeDecide runs a policy decision, translating *nn.ShapeError panics
// (raised by the networks on length mismatches, including inside the
// request's lazy Embed closure) into an ErrModelShape-wrapping error. All
// other panics propagate.
func safeDecide(ctx context.Context, pol policy.Policy, req *policy.Request) (*policy.Decision, error) {
	var d *policy.Decision
	var err error
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			re, ok := r.(error)
			var se *nn.ShapeError
			if !ok || !errors.As(re, &se) {
				panic(r)
			}
			err = fmt.Errorf("core: %w: %v", ErrModelShape, se)
		}()
		d, err = pol.Decide(ctx, req)
	}()
	return d, err
}

// traceEmbed wraps the request's lazy embedding closure in an "embed" span.
// The closure runs inside the policy's Decide, so the span is started at call
// time against the captured (armed) context, not the policy's.
func traceEmbed(ctx context.Context, req *policy.Request, label string) {
	inner := req.Embed
	if inner == nil || !obs.Enabled(ctx) {
		return
	}
	req.Embed = func() []float64 {
		_, sp := obs.StartSpan(ctx, "embed")
		sp.Annotate(label)
		vec := inner()
		sp.End()
		return vec
	}
}

// decisionKey / embedKey derive the LoopCache keys. Both embed the
// checkpoint fingerprint; the decision key also names the policy so two
// methods never trade answers.
func decisionKey(version, policyName string, id api.LoopID) string {
	return "d\x00" + version + "\x00" + policyName + "\x00" + string(id)
}

func embedKey(version string, id api.LoopID) string {
	return "e\x00" + version + "\x00" + string(id)
}

func cachedDecision(cache LoopCache, cacheable bool, key string) (vf, ifc int, ok bool) {
	if cache == nil || !cacheable {
		return 0, 0, false
	}
	return cache.GetDecision(key)
}

// wrapEmbed memoizes the request's lazy embedding closure in the cache: the
// code2vec forward pass dominates learned-policy latency, and the vector is
// a pure function of (checkpoint, loop content) — exactly the cache key.
func wrapEmbed(req *policy.Request, cache LoopCache, key string) {
	inner := req.Embed
	if inner == nil {
		return
	}
	req.Embed = func() []float64 {
		if vec, ok := cache.GetEmbed(key); ok {
			return vec
		}
		vec := inner()
		cache.PutEmbed(key, vec)
		return vec
	}
}

// LoopPrediction is the policy's decision for one loop plus its simulated
// effect: program cycles with only this loop switched from the baseline
// decision to the predicted one.
type LoopPrediction struct {
	// ID is the loop's stable content+position identity (see api.LoopIDs).
	ID    api.LoopID
	Label string
	Func  string
	VF    int
	IF    int
	// Cycles is the simulated program cycle count with this loop at (VF, IF)
	// and every other loop at the baseline cost model's decision.
	Cycles float64
	// Speedup is BaselineCycles / Cycles.
	Speedup float64
}

// Inference is the full result of running a decision policy on one source
// program — the legacy (v1) aggregate view, assembled from the per-loop
// answer of PredictLoops.
type Inference struct {
	// Policy names the decision method that produced the result.
	Policy string
	// Truncated reports that at least one loop's decision came from a
	// search cut short by the context deadline (best-so-far answer).
	Truncated bool
	// Annotated is the source re-printed with the decisions' pragmas
	// injected (the paper's Figure 4 artifact).
	Annotated string
	Decisions []extractor.Decision
	Loops     []LoopPrediction
	// BaselineCycles is the simulated program cycle count under the baseline
	// cost model; PredictedCycles applies every predicted decision at once.
	BaselineCycles  float64
	PredictedCycles float64
	// Speedup is BaselineCycles / PredictedCycles.
	Speedup float64
}

// PredictSource runs inference on new source text without mutating the
// framework. It is a thin adapter over PredictLoops, folding the per-loop
// answer into the legacy aggregate Inference. The default policy is the
// trained agent; without one the call fails with ErrNoAgent. Safe for
// concurrent callers.
func (f *Framework) PredictSource(ctx context.Context, source string, params map[string]int64, opts ...InferOption) (*Inference, error) {
	resp, err := f.PredictLoops(ctx, source, params, opts...)
	if err != nil {
		return nil, err
	}
	inf := &Inference{
		Policy:          resp.Policy,
		Truncated:       resp.Truncated,
		Annotated:       resp.Annotated,
		BaselineCycles:  resp.BaselineCycles,
		PredictedCycles: resp.PredictedCycles,
		Speedup:         resp.Speedup,
	}
	for _, d := range resp.Loops {
		inf.Decisions = append(inf.Decisions, extractor.Decision{Label: d.Label, VF: d.VF, IF: d.IF})
		inf.Loops = append(inf.Loops, LoopPrediction{
			ID:      d.Loop,
			Label:   d.Label,
			Func:    d.Func,
			VF:      d.VF,
			IF:      d.IF,
			Cycles:  d.Cycles,
			Speedup: d.PredictedSpeedup,
		})
	}
	return inf, nil
}

// loopRequest assembles the policy.Request for one loop of a lowered
// program. Embedding and candidate evaluation are closures so policies that
// never use them cost nothing.
func (f *Framework) loopRequest(source string, info extractor.LoopInfo, irp *ir.Program, loop *ir.Loop, basePlans map[string]*vectorizer.Plan) *policy.Request {
	return &policy.Request{
		Name:   info.Label,
		Source: source,
		Prog:   irp,
		Loop:   loop,
		Arch:   f.Cfg.Arch,
		Embed: func() []float64 {
			// Extraction and the forward pass run in pooled scratch; only
			// the returned vector is allocated, because policies (and the
			// LoopCache wrapper) retain it past this call.
			s := f.getEmbedScratch()
			defer f.putEmbedScratch(s)
			vec := make([]float64, f.embed.Dim())
			f.embed.ForwardInto(vec, s.ex.Extract(info.Outermost, f.Cfg.Embed), &s.sc)
			return vec
		},
		Evaluate: func(vf, ifc int) float64 {
			single := clonePlans(basePlans)
			single[loop.Label] = vectorizer.New(loop, f.Cfg.Arch, vf, ifc)
			return sim.Program(irp, single, f.Cfg.Sim).Cycles
		},
	}
}

// Sweep is the VF x IF performance grid for one loop of a program.
type Sweep struct {
	// Loop is the label of the swept (first innermost) loop; ID is its
	// stable content+position identity.
	Loop string
	ID   api.LoopID
	VFs  []int
	IFs  []int
	// BaselineCycles is the program cycle count under the baseline cost
	// model everywhere.
	BaselineCycles float64
	// Speedup[i][j] is BaselineCycles over the cycles with (VFs[i], IFs[j])
	// injected at Loop and the baseline decision everywhere else.
	Speedup [][]float64
	// Policy, ChosenVF, ChosenIF report the decision of the policy selected
	// with WithPolicy/WithPolicyName for the swept loop — the grid cell the
	// method would pick. Policy is empty when no policy was requested.
	Policy    string
	ChosenVF  int
	ChosenIF  int
	Truncated bool
}

// SweepSource measures the full factor grid for the first innermost loop of
// the source, without loading it as a unit. It shares PredictLoops's compile
// pipeline, builds only per-request state, and is safe for concurrent
// callers; it does not need a trained agent. The context cancels the grid
// walk (a partial grid is discarded, unlike a policy search's best-so-far
// answer). When a policy is selected via options, its decision for the
// swept loop is reported alongside the grid.
func (f *Framework) SweepSource(ctx context.Context, source string, params map[string]int64, opts ...InferOption) (*Sweep, error) {
	var o inferOpts
	for _, opt := range opts {
		opt(&o)
	}
	pol, err := f.resolvePolicy(&o, "")
	if err != nil {
		return nil, err
	}
	ctx, root := obs.StartSpan(ctx, "sweep")
	defer root.End()
	c, err := f.compileSource(ctx, source, params, &o)
	if err != nil {
		return nil, err
	}
	info := c.infos[0]
	loop := c.irp.FindLoop(info.Label)
	if loop == nil {
		return nil, fmt.Errorf("core: loop %s missing from IR", info.Label)
	}

	sw := &Sweep{
		Loop:           info.Label,
		ID:             c.ids[info.Label],
		VFs:            f.Cfg.Arch.VFs(),
		IFs:            f.Cfg.Arch.IFs(),
		BaselineCycles: c.baseCycles,
	}
	gridCycles := make(map[[2]int]float64, len(sw.VFs)*len(sw.IFs))
	for _, vf := range sw.VFs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(sw.IFs))
		for _, ifc := range sw.IFs {
			plans := clonePlans(c.basePlans)
			plans[loop.Label] = vectorizer.New(loop, f.Cfg.Arch, vf, ifc)
			cycles := sim.Program(c.irp, plans, f.Cfg.Sim).Cycles
			gridCycles[[2]int{vf, ifc}] = cycles
			row = append(row, safeRatio(c.baseCycles, cycles))
		}
		sw.Speedup = append(sw.Speedup, row)
	}
	if pol != nil {
		req := f.loopRequest(source, info, c.irp, loop, c.basePlans)
		// A search policy over the same objective would re-simulate the grid
		// the sweep just walked; serve those evaluations from the computed
		// cells (brute's overlay becomes a free argmin).
		simulate := req.Evaluate
		req.Evaluate = func(vf, ifc int) float64 {
			if c, ok := gridCycles[[2]int{vf, ifc}]; ok {
				return c
			}
			return simulate(vf, ifc)
		}
		d, err := pol.Decide(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("core: policy %s on loop %s: %w", pol.Name(), info.Label, err)
		}
		sw.Policy, sw.ChosenVF, sw.ChosenIF, sw.Truncated = pol.Name(), d.VF, d.IF, d.Truncated
	}
	return sw, nil
}

func clonePlans(plans map[string]*vectorizer.Plan) map[string]*vectorizer.Plan {
	out := make(map[string]*vectorizer.Plan, len(plans))
	for k, v := range plans {
		out[k] = v
	}
	return out
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}
