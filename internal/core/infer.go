package core

import (
	"fmt"

	"neurovec/internal/code2vec"
	"neurovec/internal/costmodel"
	"neurovec/internal/extractor"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/sim"
	"neurovec/internal/vectorizer"
)

// This file is the framework's stateless inference path: everything here
// builds per-request state (parse, lower, extract, simulate) and touches the
// framework only through read-only views — the configuration and the trained
// weights. That makes PredictSource, SweepSource, AnnotateSource and
// EmbedSource safe for any number of concurrent callers, which is what the
// serving layer (internal/service) relies on. The mutating APIs (LoadSource,
// Train, LoadModel, ...) remain single-threaded setup operations.

// LoopPrediction is the agent's decision for one loop plus its simulated
// effect: program cycles with only this loop switched from the baseline
// decision to the predicted one.
type LoopPrediction struct {
	Label string
	Func  string
	VF    int
	IF    int
	// Cycles is the simulated program cycle count with this loop at (VF, IF)
	// and every other loop at the baseline cost model's decision.
	Cycles float64
	// Speedup is BaselineCycles / Cycles.
	Speedup float64
}

// Inference is the full result of running the trained policy on one source
// program.
type Inference struct {
	// Annotated is the source re-printed with the decisions' pragmas
	// injected (the paper's Figure 4 artifact).
	Annotated string
	Decisions []extractor.Decision
	Loops     []LoopPrediction
	// BaselineCycles is the simulated program cycle count under the baseline
	// cost model; PredictedCycles applies every predicted decision at once.
	BaselineCycles  float64
	PredictedCycles float64
	// Speedup is BaselineCycles / PredictedCycles.
	Speedup float64
}

// PredictSource runs inference on new source text without mutating the
// framework: it parses and lowers the program, embeds each innermost loop,
// asks the agent for factors via the stateless policy path, and simulates
// the outcome. Safe for concurrent callers on a trained framework.
func (f *Framework) PredictSource(source string, params map[string]int64) (*Inference, error) {
	if f.agent == nil {
		return nil, fmt.Errorf("core: agent not trained")
	}
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, err
	}
	infos := extractor.Loops(prog)
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no loops in source: %w", ErrNoLoops)
	}
	opts := f.Cfg.Lower
	if params != nil {
		opts.ParamValues = params
	}
	irp, err := lower.Program(prog, opts)
	if err != nil {
		return nil, err
	}
	basePlans := costmodel.Plans(irp, f.Cfg.Arch)
	baseCycles := sim.Program(irp, basePlans, f.Cfg.Sim).Cycles

	inf := &Inference{BaselineCycles: baseCycles}
	combined := clonePlans(basePlans)
	for _, info := range infos {
		vec, _ := f.embed.Forward(code2vec.ExtractContexts(info.Outermost, f.Cfg.Embed))
		vf, ifc := f.agent.PredictObs(vec)
		loop := irp.FindLoop(info.Label)
		if loop == nil {
			return nil, fmt.Errorf("core: loop %s missing from IR", info.Label)
		}
		plan := vectorizer.New(loop, f.Cfg.Arch, vf, ifc)
		single := clonePlans(basePlans)
		single[info.Label] = plan
		cycles := sim.Program(irp, single, f.Cfg.Sim).Cycles
		inf.Decisions = append(inf.Decisions, extractor.Decision{Label: info.Label, VF: vf, IF: ifc})
		inf.Loops = append(inf.Loops, LoopPrediction{
			Label:   info.Label,
			Func:    info.Func,
			VF:      vf,
			IF:      ifc,
			Cycles:  cycles,
			Speedup: safeRatio(baseCycles, cycles),
		})
		combined[info.Label] = plan
	}
	inf.PredictedCycles = sim.Program(irp, combined, f.Cfg.Sim).Cycles
	inf.Speedup = safeRatio(baseCycles, inf.PredictedCycles)
	inf.Annotated = extractor.Annotate(prog, inf.Decisions)
	return inf, nil
}

// Sweep is the VF x IF performance grid for one loop of a program.
type Sweep struct {
	// Loop is the label of the swept (first innermost) loop.
	Loop string
	VFs  []int
	IFs  []int
	// BaselineCycles is the program cycle count under the baseline cost
	// model everywhere.
	BaselineCycles float64
	// Speedup[i][j] is BaselineCycles over the cycles with (VFs[i], IFs[j])
	// injected at Loop and the baseline decision everywhere else.
	Speedup [][]float64
}

// SweepSource measures the full factor grid for the first innermost loop of
// the source, without loading it as a unit. Like PredictSource it builds
// only per-request state and is safe for concurrent callers; it does not
// need a trained agent.
func (f *Framework) SweepSource(source string, params map[string]int64) (*Sweep, error) {
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, err
	}
	infos := extractor.Loops(prog)
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no loops in source: %w", ErrNoLoops)
	}
	opts := f.Cfg.Lower
	if params != nil {
		opts.ParamValues = params
	}
	irp, err := lower.Program(prog, opts)
	if err != nil {
		return nil, err
	}
	loop := irp.FindLoop(infos[0].Label)
	if loop == nil {
		return nil, fmt.Errorf("core: loop %s missing from IR", infos[0].Label)
	}
	basePlans := costmodel.Plans(irp, f.Cfg.Arch)
	baseCycles := sim.Program(irp, basePlans, f.Cfg.Sim).Cycles

	sw := &Sweep{
		Loop:           infos[0].Label,
		VFs:            f.Cfg.Arch.VFs(),
		IFs:            f.Cfg.Arch.IFs(),
		BaselineCycles: baseCycles,
	}
	for _, vf := range sw.VFs {
		row := make([]float64, 0, len(sw.IFs))
		for _, ifc := range sw.IFs {
			plans := clonePlans(basePlans)
			plans[loop.Label] = vectorizer.New(loop, f.Cfg.Arch, vf, ifc)
			row = append(row, safeRatio(baseCycles, sim.Program(irp, plans, f.Cfg.Sim).Cycles))
		}
		sw.Speedup = append(sw.Speedup, row)
	}
	return sw, nil
}

func clonePlans(plans map[string]*vectorizer.Plan) map[string]*vectorizer.Plan {
	out := make(map[string]*vectorizer.Plan, len(plans))
	for k, v := range plans {
		out[k] = v
	}
	return out
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}
