package core

import (
	"context"
	"fmt"

	"neurovec/internal/code2vec"
	"neurovec/internal/costmodel"
	"neurovec/internal/extractor"
	"neurovec/internal/ir"
	"neurovec/internal/lang"
	"neurovec/internal/lower"
	"neurovec/internal/policy"
	"neurovec/internal/sim"
	"neurovec/internal/vectorizer"
)

// This file is the framework's stateless inference path: everything here
// builds per-request state (parse, lower, extract, simulate) and touches the
// framework only through read-only views — the configuration and the trained
// weights. That makes PredictSource, SweepSource, AnnotateSource and
// EmbedSource safe for any number of concurrent callers, which is what the
// serving layer (internal/service) relies on. The mutating APIs (LoadSource,
// Train, LoadModel, ...) remain single-threaded setup operations.
//
// Inference is policy-parameterized: the decision for each loop comes from a
// policy.Policy — the trained agent by default, or any registered method
// (costmodel, brute, random, polly, nns) selected with WithPolicy /
// WithPolicyName. The context is threaded into every Decide call so
// deadline-aware policies (brute force) can return their best answer so far
// instead of blowing the caller's latency budget.

// InferOption configures one PredictSource / AnnotateSource / SweepSource
// call.
type InferOption func(*inferOpts)

type inferOpts struct {
	pol     policy.Policy
	polName string
}

// WithPolicy uses a concrete policy instance for this call — the hook for
// policies that are not in the registry (e.g. a trained ranker model's
// Policy()).
func WithPolicy(p policy.Policy) InferOption {
	return func(o *inferOpts) { o.pol = p }
}

// WithPolicyName resolves the named policy from the registry, bound to this
// framework, at call time. Unknown names fail the call with
// policy.ErrUnknown.
func WithPolicyName(name string) InferOption {
	return func(o *inferOpts) { o.polName = name }
}

// resolvePolicy picks the policy for a call: an explicit instance wins, then
// a registry name, then fallback (DefaultPolicy for prediction, "" meaning
// none for sweeps).
func (f *Framework) resolvePolicy(o *inferOpts, fallback string) (policy.Policy, error) {
	if o.pol != nil {
		return o.pol, nil
	}
	name := o.polName
	if name == "" {
		name = fallback
	}
	if name == "" {
		return nil, nil
	}
	return f.Policy(name)
}

// LoopPrediction is the policy's decision for one loop plus its simulated
// effect: program cycles with only this loop switched from the baseline
// decision to the predicted one.
type LoopPrediction struct {
	Label string
	Func  string
	VF    int
	IF    int
	// Cycles is the simulated program cycle count with this loop at (VF, IF)
	// and every other loop at the baseline cost model's decision.
	Cycles float64
	// Speedup is BaselineCycles / Cycles.
	Speedup float64
}

// Inference is the full result of running a decision policy on one source
// program.
type Inference struct {
	// Policy names the decision method that produced the result.
	Policy string
	// Truncated reports that at least one loop's decision came from a
	// search cut short by the context deadline (best-so-far answer).
	Truncated bool
	// Annotated is the source re-printed with the decisions' pragmas
	// injected (the paper's Figure 4 artifact).
	Annotated string
	Decisions []extractor.Decision
	Loops     []LoopPrediction
	// BaselineCycles is the simulated program cycle count under the baseline
	// cost model; PredictedCycles applies every predicted decision at once.
	BaselineCycles  float64
	PredictedCycles float64
	// Speedup is BaselineCycles / PredictedCycles.
	Speedup float64
}

// PredictSource runs inference on new source text without mutating the
// framework: it parses and lowers the program, asks the selected policy for
// factors loop by loop, and simulates the outcome. The default policy is
// the trained agent; without one the call fails with ErrNoAgent. Safe for
// concurrent callers.
func (f *Framework) PredictSource(ctx context.Context, source string, params map[string]int64, opts ...InferOption) (*Inference, error) {
	var o inferOpts
	for _, opt := range opts {
		opt(&o)
	}
	pol, err := f.resolvePolicy(&o, DefaultPolicy)
	if err != nil {
		return nil, err
	}
	// A deadline-aware policy still answers (best-so-far) under an expired
	// context; everything else fails fast before any simulation work.
	if err := ctx.Err(); err != nil && !policy.IsDeadlineAware(pol) {
		return nil, err
	}
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, err
	}
	infos := extractor.Loops(prog)
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no loops in source: %w", ErrNoLoops)
	}
	opts2 := f.Cfg.Lower
	if params != nil {
		opts2.ParamValues = params
	}
	irp, err := lower.Program(prog, opts2)
	if err != nil {
		return nil, err
	}
	basePlans := costmodel.Plans(irp, f.Cfg.Arch)
	baseCycles := sim.Program(irp, basePlans, f.Cfg.Sim).Cycles

	inf := &Inference{Policy: pol.Name(), BaselineCycles: baseCycles}
	combined := clonePlans(basePlans)
	for _, info := range infos {
		loop := irp.FindLoop(info.Label)
		if loop == nil {
			return nil, fmt.Errorf("core: loop %s missing from IR", info.Label)
		}
		d, err := pol.Decide(ctx, f.loopRequest(source, info, irp, loop, basePlans))
		if err != nil {
			return nil, fmt.Errorf("core: policy %s on loop %s: %w", pol.Name(), info.Label, err)
		}
		inf.Truncated = inf.Truncated || d.Truncated
		plan := vectorizer.New(loop, f.Cfg.Arch, d.VF, d.IF)
		single := clonePlans(basePlans)
		single[info.Label] = plan
		cycles := sim.Program(irp, single, f.Cfg.Sim).Cycles
		inf.Decisions = append(inf.Decisions, extractor.Decision{Label: info.Label, VF: d.VF, IF: d.IF})
		inf.Loops = append(inf.Loops, LoopPrediction{
			Label:   info.Label,
			Func:    info.Func,
			VF:      d.VF,
			IF:      d.IF,
			Cycles:  cycles,
			Speedup: safeRatio(baseCycles, cycles),
		})
		combined[info.Label] = plan
	}
	inf.PredictedCycles = sim.Program(irp, combined, f.Cfg.Sim).Cycles
	inf.Speedup = safeRatio(baseCycles, inf.PredictedCycles)
	inf.Annotated = extractor.Annotate(prog, inf.Decisions)
	return inf, nil
}

// loopRequest assembles the policy.Request for one loop of a lowered
// program. Embedding and candidate evaluation are closures so policies that
// never use them cost nothing.
func (f *Framework) loopRequest(source string, info extractor.LoopInfo, irp *ir.Program, loop *ir.Loop, basePlans map[string]*vectorizer.Plan) *policy.Request {
	return &policy.Request{
		Name:   info.Label,
		Source: source,
		Prog:   irp,
		Loop:   loop,
		Arch:   f.Cfg.Arch,
		Embed: func() []float64 {
			vec, _ := f.embed.Forward(code2vec.ExtractContexts(info.Outermost, f.Cfg.Embed))
			return vec
		},
		Evaluate: func(vf, ifc int) float64 {
			single := clonePlans(basePlans)
			single[loop.Label] = vectorizer.New(loop, f.Cfg.Arch, vf, ifc)
			return sim.Program(irp, single, f.Cfg.Sim).Cycles
		},
	}
}

// Sweep is the VF x IF performance grid for one loop of a program.
type Sweep struct {
	// Loop is the label of the swept (first innermost) loop.
	Loop string
	VFs  []int
	IFs  []int
	// BaselineCycles is the program cycle count under the baseline cost
	// model everywhere.
	BaselineCycles float64
	// Speedup[i][j] is BaselineCycles over the cycles with (VFs[i], IFs[j])
	// injected at Loop and the baseline decision everywhere else.
	Speedup [][]float64
	// Policy, ChosenVF, ChosenIF report the decision of the policy selected
	// with WithPolicy/WithPolicyName for the swept loop — the grid cell the
	// method would pick. Policy is empty when no policy was requested.
	Policy    string
	ChosenVF  int
	ChosenIF  int
	Truncated bool
}

// SweepSource measures the full factor grid for the first innermost loop of
// the source, without loading it as a unit. Like PredictSource it builds
// only per-request state and is safe for concurrent callers; it does not
// need a trained agent. The context cancels the grid walk (a partial grid
// is discarded, unlike a policy search's best-so-far answer). When a policy
// is selected via options, its decision for the swept loop is reported
// alongside the grid.
func (f *Framework) SweepSource(ctx context.Context, source string, params map[string]int64, opts ...InferOption) (*Sweep, error) {
	var o inferOpts
	for _, opt := range opts {
		opt(&o)
	}
	pol, err := f.resolvePolicy(&o, "")
	if err != nil {
		return nil, err
	}
	prog, err := lang.Parse(source)
	if err != nil {
		return nil, err
	}
	infos := extractor.Loops(prog)
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no loops in source: %w", ErrNoLoops)
	}
	opts2 := f.Cfg.Lower
	if params != nil {
		opts2.ParamValues = params
	}
	irp, err := lower.Program(prog, opts2)
	if err != nil {
		return nil, err
	}
	loop := irp.FindLoop(infos[0].Label)
	if loop == nil {
		return nil, fmt.Errorf("core: loop %s missing from IR", infos[0].Label)
	}
	basePlans := costmodel.Plans(irp, f.Cfg.Arch)
	baseCycles := sim.Program(irp, basePlans, f.Cfg.Sim).Cycles

	sw := &Sweep{
		Loop:           infos[0].Label,
		VFs:            f.Cfg.Arch.VFs(),
		IFs:            f.Cfg.Arch.IFs(),
		BaselineCycles: baseCycles,
	}
	gridCycles := make(map[[2]int]float64, len(sw.VFs)*len(sw.IFs))
	for _, vf := range sw.VFs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := make([]float64, 0, len(sw.IFs))
		for _, ifc := range sw.IFs {
			plans := clonePlans(basePlans)
			plans[loop.Label] = vectorizer.New(loop, f.Cfg.Arch, vf, ifc)
			cycles := sim.Program(irp, plans, f.Cfg.Sim).Cycles
			gridCycles[[2]int{vf, ifc}] = cycles
			row = append(row, safeRatio(baseCycles, cycles))
		}
		sw.Speedup = append(sw.Speedup, row)
	}
	if pol != nil {
		req := f.loopRequest(source, infos[0], irp, loop, basePlans)
		// A search policy over the same objective would re-simulate the grid
		// the sweep just walked; serve those evaluations from the computed
		// cells (brute's overlay becomes a free argmin).
		simulate := req.Evaluate
		req.Evaluate = func(vf, ifc int) float64 {
			if c, ok := gridCycles[[2]int{vf, ifc}]; ok {
				return c
			}
			return simulate(vf, ifc)
		}
		d, err := pol.Decide(ctx, req)
		if err != nil {
			return nil, fmt.Errorf("core: policy %s on loop %s: %w", pol.Name(), infos[0].Label, err)
		}
		sw.Policy, sw.ChosenVF, sw.ChosenIF, sw.Truncated = pol.Name(), d.VF, d.IF, d.Truncated
	}
	return sw, nil
}

func clonePlans(plans map[string]*vectorizer.Plan) map[string]*vectorizer.Plan {
	out := make(map[string]*vectorizer.Plan, len(plans))
	for k, v := range plans {
		out[k] = v
	}
	return out
}

func safeRatio(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}
