package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	testVFs = []int{1, 2, 4, 8, 16, 32, 64}
	testIFs = []int{1, 2, 4, 8, 16}
)

func TestBruteForceFindsMinimum(t *testing.T) {
	// Quadratic bowl with minimum at (8, 4).
	eval := func(vf, ifc int) float64 {
		return math.Pow(float64(vf-8), 2) + math.Pow(float64(ifc-4), 2)
	}
	vf, ifc, best := BruteForce(testVFs, testIFs, eval)
	if vf != 8 || ifc != 4 || best != 0 {
		t.Fatalf("got (%d,%d,%g), want (8,4,0)", vf, ifc, best)
	}
}

func TestBruteForceTriesAll35(t *testing.T) {
	calls := 0
	BruteForce(testVFs, testIFs, func(int, int) float64 { calls++; return 1 })
	if calls != 35 {
		t.Fatalf("evaluations = %d, want 35", calls)
	}
}

func TestBruteForceNeverWorseProperty(t *testing.T) {
	// Brute force is at least as good as any single evaluation.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		table := map[[2]int]float64{}
		for _, v := range testVFs {
			for _, c := range testIFs {
				table[[2]int{v, c}] = rng.Float64()
			}
		}
		eval := func(vf, ifc int) float64 { return table[[2]int{vf, ifc}] }
		_, _, best := BruteForce(testVFs, testIFs, eval)
		for _, s := range table {
			if best > s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomInActionSpace(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	seen := map[[2]int]bool{}
	for i := 0; i < 2000; i++ {
		vf, ifc := Random(testVFs, testIFs, rng)
		if !contains(testVFs, vf) || !contains(testIFs, ifc) {
			t.Fatalf("out of space: (%d,%d)", vf, ifc)
		}
		seen[[2]int{vf, ifc}] = true
	}
	if len(seen) != 35 {
		t.Errorf("random covered %d/35 combinations over 2000 draws", len(seen))
	}
}

func contains(a []int, v int) bool {
	for _, x := range a {
		if x == v {
			return true
		}
	}
	return false
}

func TestNNSExactRecall(t *testing.T) {
	var n NNS
	n.Add([]float64{0, 0}, 4, 2)
	n.Add([]float64{10, 10}, 64, 8)
	if vf, ifc := n.Predict([]float64{0.1, -0.1}); vf != 4 || ifc != 2 {
		t.Fatalf("near origin: (%d,%d)", vf, ifc)
	}
	if vf, ifc := n.Predict([]float64{9, 11}); vf != 64 || ifc != 8 {
		t.Fatalf("near (10,10): (%d,%d)", vf, ifc)
	}
}

func TestNNSEmpty(t *testing.T) {
	var n NNS
	if vf, ifc := n.Predict([]float64{1}); vf != 1 || ifc != 1 {
		t.Fatal("empty NNS should return scalar factors")
	}
}

func TestNNSCopiesInputs(t *testing.T) {
	var n NNS
	x := []float64{1, 2}
	n.Add(x, 8, 2)
	x[0] = 99 // mutate after insert
	if vf, _ := n.Predict([]float64{1, 2}); vf != 8 {
		t.Fatal("NNS stored a reference instead of a copy")
	}
}

func TestTreeLearnsAxisAlignedConcept(t *testing.T) {
	// Class = quadrant of a 2-D point: perfectly separable by a depth-2 tree.
	rng := rand.New(rand.NewSource(11))
	var x [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		p := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		c := 0
		if p[0] > 0 {
			c += 1
		}
		if p[1] > 0 {
			c += 2
		}
		x = append(x, p)
		y = append(y, c)
	}
	tree := TrainTree(x, y, 4, DefaultTreeConfig())
	if acc := tree.Accuracy(x, y); acc < 0.98 {
		t.Fatalf("training accuracy = %.3f, want >= 0.98", acc)
	}
	if tree.Predict([]float64{0.5, 0.5}) != 3 {
		t.Error("quadrant prediction wrong")
	}
}

func TestTreeRespectsDepthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x [][]float64
	var y []int
	for i := 0; i < 300; i++ {
		x = append(x, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
		y = append(y, rng.Intn(8))
	}
	cfg := TreeConfig{MaxDepth: 3, MinLeaf: 1}
	tree := TrainTree(x, y, 8, cfg)
	if d := tree.Depth(); d > 3 {
		t.Fatalf("depth = %d, exceeds bound 3", d)
	}
}

func TestTreePureNodeShortCircuits(t *testing.T) {
	x := [][]float64{{1}, {2}, {3}}
	y := []int{5, 5, 5}
	tree := TrainTree(x, y, 6, DefaultTreeConfig())
	if tree.Depth() != 0 {
		t.Fatal("pure data should yield a single leaf")
	}
	if tree.Predict([]float64{99}) != 5 {
		t.Fatal("leaf class wrong")
	}
}

func TestTreeGeneralizes(t *testing.T) {
	// Labels depend on one of 10 features; the tree must find it and
	// generalise to held-out points.
	rng := rand.New(rand.NewSource(7))
	gen := func(n int) ([][]float64, []int) {
		var xs [][]float64
		var ys []int
		for i := 0; i < n; i++ {
			v := make([]float64, 10)
			for j := range v {
				v[j] = rng.Float64()
			}
			c := 0
			if v[7] > 0.5 {
				c = 1
			}
			xs = append(xs, v)
			ys = append(ys, c)
		}
		return xs, ys
	}
	trainX, trainY := gen(500)
	testX, testY := gen(200)
	tree := TrainTree(trainX, trainY, 2, DefaultTreeConfig())
	if acc := tree.Accuracy(testX, testY); acc < 0.95 {
		t.Fatalf("held-out accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestGiniCounts(t *testing.T) {
	if g := giniCounts([]int{5, 5}, 10); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("gini(5,5) = %g, want 0.5", g)
	}
	if g := giniCounts([]int{10, 0}, 10); g != 0 {
		t.Errorf("gini(pure) = %g, want 0", g)
	}
}
