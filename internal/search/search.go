// Package search implements the non-RL prediction methods the framework
// supports (paper Section 3.5): exhaustive brute-force search, random
// search, nearest-neighbor search (NNS), and decision trees.
//
// Brute force provides the oracle labels; NNS and the decision tree are
// trained on those labels over the code embedding the RL agent learned —
// they cannot be trained end to end, which is exactly how the paper uses
// them.
package search

import (
	"context"
	"math"
	"math/rand"
)

// Evaluator scores one (VF, IF) choice; lower is better (e.g. simulated
// cycles). Brute force minimises it.
type Evaluator func(vf, ifc int) float64

// BruteForce tries every factor combination and returns the best pair and
// its score. Ties break toward smaller factors, matching how an exhaustive
// scripted search would iterate.
func BruteForce(vfs, ifs []int, eval Evaluator) (vf, ifc int, best float64) {
	vf, ifc, best, _ = BruteForceContext(context.Background(), vfs, ifs, eval)
	return vf, ifc, best
}

// BruteForceContext is BruteForce with cooperative cancellation: it checks
// ctx before every candidate evaluation and, once the context is done,
// returns the best pair found so far instead of finishing the grid.
// complete reports whether the whole space was explored; a context that is
// already done yields the scalar fallback (1, 1) with complete == false.
func BruteForceContext(ctx context.Context, vfs, ifs []int, eval Evaluator) (vf, ifc int, best float64, complete bool) {
	best = math.Inf(1)
	vf, ifc = 1, 1
	for _, v := range vfs {
		for _, f := range ifs {
			if ctx.Err() != nil {
				return vf, ifc, best, false
			}
			if s := eval(v, f); s < best {
				best, vf, ifc = s, v, f
			}
		}
	}
	return vf, ifc, best, true
}

// Random picks a uniformly random action — the paper's random-search
// comparator, which performs "much worse than the baseline" and shows that
// the learned policy exploits real structure.
func Random(vfs, ifs []int, rng *rand.Rand) (vf, ifc int) {
	return vfs[rng.Intn(len(vfs))], ifs[rng.Intn(len(ifs))]
}

// ---- Nearest-neighbor search ----

// NNS is a 1-nearest-neighbor predictor over embedding vectors with
// brute-force (VF, IF) labels.
type NNS struct {
	xs [][]float64
	ys [][2]int
}

// Add inserts a labelled training point.
func (n *NNS) Add(x []float64, vf, ifc int) {
	n.xs = append(n.xs, append([]float64(nil), x...))
	n.ys = append(n.ys, [2]int{vf, ifc})
}

// Len returns the number of stored points.
func (n *NNS) Len() int { return len(n.xs) }

// Predict returns the label of the closest stored point (Euclidean), or
// (1, 1) if the index is empty.
func (n *NNS) Predict(x []float64) (vf, ifc int) {
	if len(n.xs) == 0 {
		return 1, 1
	}
	best, bi := math.Inf(1), 0
	for i, p := range n.xs {
		d := sqDist(p, x)
		if d < best {
			best, bi = d, i
		}
	}
	return n.ys[bi][0], n.ys[bi][1]
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
