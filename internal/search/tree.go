package search

import (
	"math"
	"sort"
)

// Tree is a CART classification tree trained with Gini impurity. Classes
// are joint action indices (vfIdx*len(IFs)+ifIdx); the caller decodes.
type Tree struct {
	root    *treeNode
	classes int
}

type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	class     int // leaf prediction
	leaf      bool
}

// TreeConfig bounds tree growth.
type TreeConfig struct {
	MaxDepth    int
	MinLeaf     int
	MaxFeatures int // features examined per split (0 = all)
}

// DefaultTreeConfig returns reasonable bounds for embedding-sized inputs.
func DefaultTreeConfig() TreeConfig {
	return TreeConfig{MaxDepth: 12, MinLeaf: 2}
}

// TrainTree fits a decision tree on feature vectors X with class labels y.
func TrainTree(x [][]float64, y []int, classes int, cfg TreeConfig) *Tree {
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 12
	}
	if cfg.MinLeaf <= 0 {
		cfg.MinLeaf = 1
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	t := &Tree{classes: classes}
	t.root = t.grow(x, y, idx, 0, cfg)
	return t
}

// Predict returns the class for a feature vector.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for n != nil && !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return 0
	}
	return n.class
}

// Depth returns the maximum depth of the tree (diagnostics).
func (t *Tree) Depth() int { return depth(t.root) }

func depth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depth(n.left), depth(n.right)
	if r > l {
		l = r
	}
	return l + 1
}

func (t *Tree) grow(x [][]float64, y []int, idx []int, d int, cfg TreeConfig) *treeNode {
	counts := make([]int, t.classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	majority, best := 0, -1
	pure := true
	for c, n := range counts {
		if n > best {
			best, majority = n, c
		}
		if n > 0 && n != len(idx) {
			pure = false
		}
	}
	if pure || d >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return &treeNode{leaf: true, class: majority}
	}

	feat, thr, gain := t.bestSplit(x, y, idx, cfg)
	if gain <= 1e-12 {
		return &treeNode{leaf: true, class: majority}
	}
	var li, ri []int
	for _, i := range idx {
		if x[i][feat] <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) < cfg.MinLeaf || len(ri) < cfg.MinLeaf {
		return &treeNode{leaf: true, class: majority}
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      t.grow(x, y, li, d+1, cfg),
		right:     t.grow(x, y, ri, d+1, cfg),
	}
}

// bestSplit scans features for the Gini-optimal threshold.
func (t *Tree) bestSplit(x [][]float64, y []int, idx []int, cfg TreeConfig) (feat int, thr, gain float64) {
	nFeat := len(x[idx[0]])
	step := 1
	if cfg.MaxFeatures > 0 && nFeat > cfg.MaxFeatures {
		step = nFeat / cfg.MaxFeatures
	}
	parent := gini(y, idx, t.classes)
	bestGain := 0.0
	bestFeat, bestThr := -1, 0.0

	vals := make([]float64, 0, len(idx))
	order := make([]int, len(idx))
	for f := 0; f < nFeat; f += step {
		vals = vals[:0]
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return x[order[a]][f] < x[order[b]][f] })
		for _, i := range order {
			vals = append(vals, x[i][f])
		}
		// Incremental class counts over the sorted order.
		leftCounts := make([]int, t.classes)
		rightCounts := make([]int, t.classes)
		for _, i := range order {
			rightCounts[y[i]]++
		}
		nLeft := 0
		nTotal := len(order)
		for k := 0; k < nTotal-1; k++ {
			c := y[order[k]]
			leftCounts[c]++
			rightCounts[c]--
			nLeft++
			if vals[k] == vals[k+1] {
				continue // cannot split between equal values
			}
			g := parent - (float64(nLeft)/float64(nTotal))*giniCounts(leftCounts, nLeft) -
				(float64(nTotal-nLeft)/float64(nTotal))*giniCounts(rightCounts, nTotal-nLeft)
			if g > bestGain {
				bestGain = g
				bestFeat = f
				bestThr = (vals[k] + vals[k+1]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return 0, 0, 0
	}
	return bestFeat, bestThr, bestGain
}

func gini(y []int, idx []int, classes int) float64 {
	counts := make([]int, classes)
	for _, i := range idx {
		counts[y[i]]++
	}
	return giniCounts(counts, len(idx))
}

func giniCounts(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	s := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		s -= p * p
	}
	if s < 0 {
		s = 0
	}
	return s
}

// Accuracy is a convenience for evaluating a tree on labelled data.
func (t *Tree) Accuracy(x [][]float64, y []int) float64 {
	if len(x) == 0 {
		return math.NaN()
	}
	ok := 0
	for i := range x {
		if t.Predict(x[i]) == y[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(x))
}
