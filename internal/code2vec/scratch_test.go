package code2vec

import (
	"testing"
)

const squareSrc = `
float x[256];
void g() {
    for (int i = 0; i < 256; i++) {
        x[i] = x[i] * x[i];
    }
}
`

// TestForwardIntoParity pins the tentpole invariant: the scratch-backed
// inference forward is bit-identical to the allocating one, across reuse of
// the same Scratch on different bags.
func TestForwardIntoParity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutDim = 48
	cfg.EmbedDim = 12
	m := NewModel(cfg)
	var s Scratch
	dst := make([]float64, cfg.OutDim)
	for _, src := range []string{copySrc, squareSrc, copySrc} {
		ctxs := ExtractContexts(loopStmt(t, src), cfg)
		want, _ := m.Forward(ctxs)
		got := m.ForwardInto(dst, ctxs, &s)
		for o := range want {
			if got[o] != want[o] {
				t.Fatalf("%q out[%d] = %g, want %g (must be bit-identical)", src[:20], o, got[o], want[o])
			}
		}
	}
	// Empty bag: zero vector, like Forward.
	got := m.ForwardInto(dst, nil, &s)
	for o, v := range got {
		if v != 0 {
			t.Fatalf("empty bag out[%d] = %g, want 0", o, v)
		}
	}
}

func TestForwardIntoZeroAllocs(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutDim = 48
	cfg.EmbedDim = 12
	m := NewModel(cfg)
	ctxs := ExtractContexts(loopStmt(t, copySrc), cfg)
	var s Scratch
	dst := make([]float64, cfg.OutDim)
	m.ForwardInto(dst, ctxs, &s) // grow buffers
	if allocs := testing.AllocsPerRun(50, func() { m.ForwardInto(dst, ctxs, &s) }); allocs != 0 {
		t.Fatalf("ForwardInto allocates %v per run, want 0", allocs)
	}
}

// TestExtractorMatchesExtractContexts proves buffer recycling changes no
// extraction result, including under the downsampling budget and across
// back-to-back snippets reusing the same arena.
func TestExtractorMatchesExtractContexts(t *testing.T) {
	for _, budget := range []int{120, 10} {
		cfg := DefaultConfig()
		cfg.MaxContexts = budget
		var e Extractor
		for _, src := range []string{copySrc, squareSrc, copySrc} {
			s := loopStmt(t, src)
			want := ExtractContexts(s, cfg)
			got := e.Extract(s, cfg)
			if len(got) != len(want) {
				t.Fatalf("budget %d: %d contexts, want %d", budget, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("budget %d: context %d = %v, want %v", budget, i, got[i], want[i])
				}
			}
		}
	}
}

// TestExtractorReusesBuffers asserts steady-state extraction stops growing
// its backing arrays (the allocs that remain are per-call hashing, not
// per-leaf copies).
func TestExtractorReusesBuffers(t *testing.T) {
	cfg := DefaultConfig()
	s := loopStmt(t, copySrc)
	var e Extractor
	e.Extract(s, cfg)
	c1, a1, p1 := cap(e.ctxs), cap(e.col.arena), cap(e.path)
	for i := 0; i < 5; i++ {
		e.Extract(s, cfg)
	}
	if cap(e.ctxs) != c1 || cap(e.col.arena) != a1 || cap(e.path) != p1 {
		t.Fatalf("buffers regrew: ctxs %d->%d arena %d->%d path %d->%d",
			c1, cap(e.ctxs), a1, cap(e.col.arena), p1, cap(e.path))
	}
}

func TestHashBytesModMatchesHashMod(t *testing.T) {
	for _, s := range []string{"", "For^Block_Assign:=", "a", "Index^For^Block"} {
		if hashBytesMod([]byte(s), 4096) != hashMod(s, 4096) {
			t.Fatalf("hashBytesMod(%q) != hashMod(%q)", s, s)
		}
	}
}

// TestPathBetweenArena sanity-checks the arena-backed leaf stacks feeding
// appendPathBetween.
func TestPathBetweenArena(t *testing.T) {
	leaves, arena := collectLeaves(loopStmt(t, copySrc))
	if len(leaves) < 2 {
		t.Fatal("too few leaves")
	}
	a := arena[leaves[0].lo:leaves[0].hi]
	b := arena[leaves[1].lo:leaves[1].hi]
	if len(a) == 0 || a[0] != "For" || b[0] != "For" {
		t.Fatalf("leaf stacks do not start at the loop root: %v / %v", a, b)
	}
	path, ok := pathBetween(a, b, DefaultConfig().MaxPathLen)
	if !ok || path == "" {
		t.Fatalf("no path between first two leaves (%v, %v)", a, b)
	}
}
