// Package code2vec implements a trainable code-embedding generator modelled
// on code2vec (Alon et al., POPL 2019), the embedding generator the paper
// plugs in front of its RL agent.
//
// A code snippet (here: the outermost loop of a nest, matching the paper's
// observation that feeding the outer loop body works better than the inner
// one) is decomposed into AST *path contexts*: triples (left terminal, path
// of AST node types between the terminals, right terminal). Terminals and
// paths are embedded via hashed lookup tables, each context is projected and
// squashed, and a learned attention vector aggregates the contexts into a
// single fixed-length code vector — 340 features by default, the same output
// width the paper quotes. The whole model is differentiable, so the policy
// gradient flowing back from the RL agent trains the embedding end to end.
package code2vec

import (
	"fmt"
	"hash/fnv"

	"neurovec/internal/lang"
)

// Config sets the embedder's dimensions.
type Config struct {
	TokenVocab  int // hashed terminal vocabulary size
	PathVocab   int // hashed path vocabulary size
	EmbedDim    int // terminal/path embedding width
	OutDim      int // code-vector width (paper: 340)
	MaxContexts int // per-snippet context budget
	MaxPathLen  int // maximum AST nodes on a path
	MaxWidth    int // maximum leaf-index distance between terminals
	Seed        int64
}

// DefaultConfig mirrors the paper's embedding size with a hashed vocabulary
// sized for the synthetic-loop corpus.
func DefaultConfig() Config {
	return Config{
		TokenVocab:  2048,
		PathVocab:   4096,
		EmbedDim:    32,
		OutDim:      340,
		MaxContexts: 120,
		MaxPathLen:  9,
		MaxWidth:    4,
		Seed:        1,
	}
}

// Context is one hashed path context.
type Context struct {
	Left  uint32
	Path  uint32
	Right uint32
}

// leaf is a terminal in the AST; its ancestor-type stack lives in the
// collector's shared arena at [lo:hi), so repeated extractions recycle one
// backing array instead of copying a fresh stack per terminal.
type leaf struct {
	text   string
	lo, hi int
}

// ExtractContexts decomposes a statement (typically a ForStmt) into hashed
// path contexts. Extraction is deterministic: when a snippet yields more
// than cfg.MaxContexts contexts, an evenly spaced subset is kept.
//
// The returned slice is freshly owned by the caller. Hot paths that extract
// repeatedly should hold an Extractor instead.
func ExtractContexts(s lang.Stmt, cfg Config) []Context {
	return new(Extractor).Extract(s, cfg)
}

// Extractor runs repeated context extractions through one set of reusable
// buffers (leaf list, ancestor arena, path scratch, context list). The slice
// returned by Extract is valid only until the next Extract call; copy it to
// retain. An Extractor belongs to one goroutine at a time; the zero value is
// ready to use.
type Extractor struct {
	col  collector
	path []byte
	ctxs []Context
	keep []Context // downsampled subset, when over budget
}

// Extract is ExtractContexts against the extractor's recycled buffers.
func (e *Extractor) Extract(s lang.Stmt, cfg Config) []Context {
	e.col.reset()
	e.col.stmt(s)
	leaves, arena := e.col.leaves, e.col.arena
	e.ctxs = e.ctxs[:0]
	for i := 0; i < len(leaves); i++ {
		for j := i + 1; j < len(leaves) && j-i <= cfg.MaxWidth; j++ {
			a := arena[leaves[i].lo:leaves[i].hi]
			b := arena[leaves[j].lo:leaves[j].hi]
			path, ok := appendPathBetween(e.path[:0], a, b, cfg.MaxPathLen)
			e.path = path[:0]
			if !ok {
				continue
			}
			e.ctxs = append(e.ctxs, Context{
				Left:  hashMod(leaves[i].text, cfg.TokenVocab),
				Path:  hashBytesMod(path, cfg.PathVocab),
				Right: hashMod(leaves[j].text, cfg.TokenVocab),
			})
		}
	}
	ctxs := e.ctxs
	if len(ctxs) > cfg.MaxContexts {
		step := float64(len(ctxs)) / float64(cfg.MaxContexts)
		e.keep = e.keep[:0]
		for k := 0; k < cfg.MaxContexts; k++ {
			e.keep = append(e.keep, ctxs[int(float64(k)*step)])
		}
		ctxs = e.keep
	}
	return ctxs
}

// appendPathBetween renders the AST path from stack a up to the lowest
// common ancestor and down to stack b, appending to dst.
func appendPathBetween(dst []byte, a, b []string, maxLen int) ([]byte, bool) {
	p := 0
	for p < len(a) && p < len(b) && a[p] == b[p] {
		p++
	}
	if p == 0 {
		return dst, false // different roots; should not happen within one stmt
	}
	up := len(a) - p
	down := len(b) - p
	if up+down+1 > maxLen {
		return dst, false
	}
	for i := len(a) - 1; i >= p; i-- {
		dst = append(dst, a[i]...)
		dst = append(dst, '^')
	}
	dst = append(dst, a[p-1]...)
	for i := p; i < len(b); i++ {
		dst = append(dst, '_')
		dst = append(dst, b[i]...)
	}
	return dst, true
}

// pathBetween is the string form of appendPathBetween, kept for tests.
func pathBetween(a, b []string, maxLen int) (string, bool) {
	out, ok := appendPathBetween(nil, a, b, maxLen)
	return string(out), ok
}

func hashMod(s string, mod int) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32() % uint32(mod)
}

// hashBytesMod is hashMod over a byte slice without the string conversion —
// the same FNV-1a over the same bytes yields the same bucket.
func hashBytesMod(b []byte, mod int) uint32 {
	h := fnv.New32a()
	h.Write(b)
	return h.Sum32() % uint32(mod)
}

// collectLeaves walks the statement gathering terminals with ancestor-type
// stacks (test helper; production goes through Extractor).
func collectLeaves(s lang.Stmt) ([]leaf, []string) {
	c := &collector{}
	c.stmt(s)
	return c.leaves, c.arena
}

type collector struct {
	stack  []string
	arena  []string
	leaves []leaf
}

func (c *collector) reset() {
	c.stack = c.stack[:0]
	c.arena = c.arena[:0]
	c.leaves = c.leaves[:0]
}

func (c *collector) push(name string) { c.stack = append(c.stack, name) }
func (c *collector) pop()             { c.stack = c.stack[:len(c.stack)-1] }

func (c *collector) leaf(text string) {
	lo := len(c.arena)
	c.arena = append(c.arena, c.stack...)
	c.leaves = append(c.leaves, leaf{text: text, lo: lo, hi: len(c.arena)})
}

func (c *collector) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case nil:
	case *lang.BlockStmt:
		c.push("Block")
		for _, x := range st.Stmts {
			c.stmt(x)
		}
		c.pop()
	case *lang.ForStmt:
		c.push("For")
		c.stmt(st.Init)
		c.expr(st.Cond)
		c.stmt(st.Post)
		c.stmt(st.Body)
		c.pop()
	case *lang.IfStmt:
		c.push("If")
		c.expr(st.Cond)
		c.stmt(st.Then)
		if st.Else != nil {
			c.push("Else")
			c.stmt(st.Else)
			c.pop()
		}
		c.pop()
	case *lang.SwitchStmt:
		c.push("Switch")
		c.expr(st.Tag)
		for _, cc := range st.Cases {
			name := "Case"
			if cc.Value == nil {
				name = "Default"
			}
			c.push(name)
			c.expr(cc.Value)
			for _, x := range cc.Body {
				c.stmt(x)
			}
			c.pop()
		}
		c.pop()
	case *lang.BreakStmt:
		c.leaf("BREAK")
	case *lang.DeclStmt:
		label := "Decl:" + st.Type.Scalar.String()
		if st.Type.IsStruct() {
			label = "Decl:struct:" + st.Type.StructName
		}
		c.push(label)
		c.leaf(st.Name)
		c.expr(st.Init)
		c.pop()
	case *lang.AssignStmt:
		c.push("Assign:" + st.Op.String())
		c.expr(st.LHS)
		c.expr(st.RHS)
		c.pop()
	case *lang.IncDecStmt:
		op := "Inc"
		if st.Dec {
			op = "Dec"
		}
		c.push(op)
		c.expr(st.X)
		c.pop()
	case *lang.ExprStmt:
		c.push("ExprStmt")
		c.expr(st.X)
		c.pop()
	case *lang.ReturnStmt:
		c.push("Return")
		c.expr(st.Value)
		c.pop()
	}
}

func (c *collector) expr(e lang.Expr) {
	switch ex := e.(type) {
	case nil:
	case *lang.Ident:
		c.leaf(ex.Name)
	case *lang.IntLit:
		c.leaf(intBucket(ex.Value))
	case *lang.FloatLit:
		c.leaf("FLOATLIT")
	case *lang.BinaryExpr:
		c.push("Bin:" + ex.Op.String())
		c.expr(ex.X)
		c.expr(ex.Y)
		c.pop()
	case *lang.UnaryExpr:
		c.push("Un:" + ex.Op.String())
		c.expr(ex.X)
		c.pop()
	case *lang.IndexExpr:
		c.push("Index")
		c.expr(ex.Base)
		c.expr(ex.Index)
		c.pop()
	case *lang.MemberExpr:
		c.push("Member")
		c.expr(ex.Base)
		c.leaf(ex.Field)
		c.pop()
	case *lang.CallExpr:
		c.push("Call:" + ex.Fun)
		for _, a := range ex.Args {
			c.expr(a)
		}
		c.pop()
	case *lang.CondExpr:
		c.push("Cond")
		c.expr(ex.Cond)
		c.expr(ex.Then)
		c.expr(ex.Else)
		c.pop()
	case *lang.CastExpr:
		c.push("Cast:" + ex.To.String())
		c.expr(ex.X)
		c.pop()
	}
}

// intBucket maps integer literals to coarse magnitude buckets (the nearest
// power of two) so that, e.g., loop bounds 500 and 512 embed identically but
// 4 and 4096 do not.
func intBucket(v int64) string {
	neg := ""
	if v < 0 {
		neg = "-"
		v = -v
	}
	b := 0
	for (int64(1) << (b + 1)) <= v {
		b++
	}
	// Round up when v is closer to the next power of two.
	if b < 62 && v-(int64(1)<<b) > (int64(1)<<(b+1))-v {
		b++
	}
	return fmt.Sprintf("INT%s%d", neg, b)
}
