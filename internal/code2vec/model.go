package code2vec

import (
	"math"
	"math/rand"

	"neurovec/internal/nn"
)

// Model is the attention encoder: hashed embeddings for terminals and paths,
// a projection to the code-vector width, and a learned attention vector that
// aggregates contexts. All parameters are trained by gradients arriving at
// the output vector (end-to-end with the RL loss).
type Model struct {
	Cfg  Config
	Tok  *nn.Param // TokenVocab x EmbedDim
	Path *nn.Param // PathVocab x EmbedDim
	W    *nn.Param // OutDim x 3*EmbedDim
	B    *nn.Param // OutDim
	Attn *nn.Param // OutDim
}

// NewModel initialises the embedder.
func NewModel(cfg Config) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := cfg.EmbedDim
	scaleEmb := 1.0 / math.Sqrt(float64(d))
	scaleW := math.Sqrt(2.0 / float64(3*d+cfg.OutDim))
	norm := func(scale float64) func(int) float64 {
		return func(int) float64 { return rng.NormFloat64() * scale }
	}
	return &Model{
		Cfg:  cfg,
		Tok:  nn.NewParamInit("c2v.tok", cfg.TokenVocab*d, norm(scaleEmb)),
		Path: nn.NewParamInit("c2v.path", cfg.PathVocab*d, norm(scaleEmb)),
		W:    nn.NewParamInit("c2v.W", cfg.OutDim*3*d, norm(scaleW)),
		B:    nn.NewParam("c2v.b", cfg.OutDim),
		Attn: nn.NewParamInit("c2v.attn", cfg.OutDim, norm(0.1)),
	}
}

// Params returns the trainable parameters.
func (m *Model) Params() []*nn.Param {
	return []*nn.Param{m.Tok, m.Path, m.W, m.B, m.Attn}
}

// Dim returns the code-vector width.
func (m *Model) Dim() int { return m.Cfg.OutDim }

// State caches a forward pass for the matching Backward call.
type State struct {
	ctxs  []Context
	c     [][]float64 // concatenated context inputs, 3d each
	h     [][]float64 // tanh(W c + b), OutDim each
	alpha []float64   // attention weights
}

// Forward embeds a context bag into a code vector. An empty bag yields the
// zero vector (e.g. a degenerate loop with no terminals).
func (m *Model) Forward(ctxs []Context) ([]float64, *State) {
	d := m.Cfg.EmbedDim
	out := m.Cfg.OutDim
	st := &State{ctxs: ctxs}
	vec := make([]float64, out)
	if len(ctxs) == 0 {
		return vec, st
	}

	n := len(ctxs)
	st.c = make([][]float64, n)
	st.h = make([][]float64, n)
	scores := make([]float64, n)
	for i, cx := range ctxs {
		c := make([]float64, 3*d)
		copy(c[0:d], m.Tok.W[int(cx.Left)*d:(int(cx.Left)+1)*d])
		copy(c[d:2*d], m.Path.W[int(cx.Path)*d:(int(cx.Path)+1)*d])
		copy(c[2*d:3*d], m.Tok.W[int(cx.Right)*d:(int(cx.Right)+1)*d])
		st.c[i] = c

		h := make([]float64, out)
		for o := 0; o < out; o++ {
			row := m.W.W[o*3*d : (o+1)*3*d]
			s := m.B.W[o]
			for k, cv := range c {
				s += row[k] * cv
			}
			h[o] = math.Tanh(s)
		}
		st.h[i] = h

		sc := 0.0
		for o := 0; o < out; o++ {
			sc += m.Attn.W[o] * h[o]
		}
		scores[i] = sc
	}
	st.alpha = nn.Softmax(scores)
	for i := range ctxs {
		a := st.alpha[i]
		for o := 0; o < out; o++ {
			vec[o] += a * st.h[i][o]
		}
	}
	return vec, st
}

// Scratch holds the reusable buffers ForwardInto needs. A Scratch belongs to
// one caller at a time; pool or confine it. The zero value is ready to use —
// buffers grow on demand and are retained across calls.
type Scratch struct {
	c      []float64 // one context input, 3*EmbedDim
	h      []float64 // all squashed projections, n*OutDim
	scores []float64 // attention logits, n
	alpha  []float64 // attention weights, n
}

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// ForwardInto is Forward for inference: it writes the code vector into dst
// (which must have length Cfg.OutDim), keeps no State for Backward, and
// performs zero heap allocations once s's buffers have grown to the bag
// size. The result is bit-identical to Forward's — same floating-point
// operation order throughout.
func (m *Model) ForwardInto(dst []float64, ctxs []Context, s *Scratch) []float64 {
	d := m.Cfg.EmbedDim
	out := m.Cfg.OutDim
	if len(dst) != out {
		panic(&nn.ShapeError{Op: "code2vec dst", Got: len(dst), Want: out})
	}
	for o := range dst {
		dst[o] = 0
	}
	if len(ctxs) == 0 {
		return dst
	}

	n := len(ctxs)
	s.c = growF(s.c, 3*d)
	s.h = growF(s.h, n*out)
	s.scores = growF(s.scores, n)
	s.alpha = growF(s.alpha, n)
	c := s.c
	for i, cx := range ctxs {
		copy(c[0:d], m.Tok.W[int(cx.Left)*d:(int(cx.Left)+1)*d])
		copy(c[d:2*d], m.Path.W[int(cx.Path)*d:(int(cx.Path)+1)*d])
		copy(c[2*d:3*d], m.Tok.W[int(cx.Right)*d:(int(cx.Right)+1)*d])

		h := s.h[i*out : (i+1)*out]
		for o := 0; o < out; o++ {
			row := m.W.W[o*3*d : (o+1)*3*d]
			sum := m.B.W[o]
			for k, cv := range c {
				sum += row[k] * cv
			}
			h[o] = math.Tanh(sum)
		}

		sc := 0.0
		for o := 0; o < out; o++ {
			sc += m.Attn.W[o] * h[o]
		}
		s.scores[i] = sc
	}
	nn.SoftmaxTo(s.alpha, s.scores)
	for i := range ctxs {
		a := s.alpha[i]
		h := s.h[i*out : (i+1)*out]
		for o := 0; o < out; o++ {
			dst[o] += a * h[o]
		}
	}
	return dst
}

// Backward accumulates parameter gradients given dLoss/dCodeVector.
func (m *Model) Backward(st *State, dvec []float64) {
	if len(st.ctxs) == 0 {
		return
	}
	d := m.Cfg.EmbedDim
	out := m.Cfg.OutDim
	n := len(st.ctxs)

	// v = sum_i alpha_i h_i with alpha = softmax(attn . h_i).
	// dAlpha_i = h_i . dvec ; dScore via softmax Jacobian;
	// dh_i = alpha_i dvec + dScore_i * attn.
	dAlpha := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for o := 0; o < out; o++ {
			s += st.h[i][o] * dvec[o]
		}
		dAlpha[i] = s
	}
	dot := 0.0
	for i := 0; i < n; i++ {
		dot += st.alpha[i] * dAlpha[i]
	}
	for i := 0; i < n; i++ {
		dScore := st.alpha[i] * (dAlpha[i] - dot)
		// Attention vector gradient.
		for o := 0; o < out; o++ {
			m.Attn.G[o] += dScore * st.h[i][o]
		}
		// Through h_i (tanh) into W, b and the context inputs.
		cx := st.ctxs[i]
		c := st.c[i]
		dc := make([]float64, 3*d)
		for o := 0; o < out; o++ {
			dh := st.alpha[i]*dvec[o] + dScore*m.Attn.W[o]
			dpre := dh * (1 - st.h[i][o]*st.h[i][o])
			if dpre == 0 {
				continue
			}
			row := m.W.W[o*3*d : (o+1)*3*d]
			grow := m.W.G[o*3*d : (o+1)*3*d]
			m.B.G[o] += dpre
			for k := 0; k < 3*d; k++ {
				grow[k] += dpre * c[k]
				dc[k] += dpre * row[k]
			}
		}
		// Scatter into the embedding tables.
		lg := m.Tok.G[int(cx.Left)*d : (int(cx.Left)+1)*d]
		pg := m.Path.G[int(cx.Path)*d : (int(cx.Path)+1)*d]
		rg := m.Tok.G[int(cx.Right)*d : (int(cx.Right)+1)*d]
		for k := 0; k < d; k++ {
			lg[k] += dc[k]
			pg[k] += dc[d+k]
			rg[k] += dc[2*d+k]
		}
	}
}
