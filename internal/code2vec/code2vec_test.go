package code2vec

import (
	"math"
	"testing"

	"neurovec/internal/lang"
)

func loopStmt(t *testing.T, src string) lang.Stmt {
	t.Helper()
	p := lang.MustParse(src)
	loops := p.Funcs[0].Loops()
	if len(loops) == 0 {
		t.Fatal("no loop")
	}
	return loops[0]
}

const copySrc = `
int a[512];
int b[512];
void f() {
    for (int i = 0; i < 512; i++) {
        a[i] = b[i] + 1;
    }
}
`

func TestExtractContextsDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	s := loopStmt(t, copySrc)
	c1 := ExtractContexts(s, cfg)
	c2 := ExtractContexts(s, cfg)
	if len(c1) == 0 {
		t.Fatal("no contexts extracted")
	}
	if len(c1) != len(c2) {
		t.Fatalf("non-deterministic count: %d vs %d", len(c1), len(c2))
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("context %d differs", i)
		}
	}
}

func TestExtractContextsRespectsBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxContexts = 10
	s := loopStmt(t, `
float A[64][64];
float B[64][64];
float C[64][64];
void f() {
    for (int i = 0; i < 64; i++) {
        for (int j = 0; j < 64; j++) {
            float s = 0;
            for (int k = 0; k < 64; k++) {
                s += A[i][k] * B[k][j];
            }
            C[i][j] = s;
        }
    }
}
`)
	ctxs := ExtractContexts(s, cfg)
	if len(ctxs) != 10 {
		t.Fatalf("contexts = %d, want exactly the budget 10", len(ctxs))
	}
}

func TestSimilarLoopsShareContexts(t *testing.T) {
	// Renaming variables changes terminals but not paths: path IDs overlap.
	cfg := DefaultConfig()
	a := ExtractContexts(loopStmt(t, copySrc), cfg)
	b := ExtractContexts(loopStmt(t, `
int xs[512];
int ys[512];
void g() {
    for (int q = 0; q < 512; q++) {
        xs[q] = ys[q] + 1;
    }
}
`), cfg)
	if len(a) != len(b) {
		t.Fatalf("structurally identical loops produced %d vs %d contexts", len(a), len(b))
	}
	same := 0
	for i := range a {
		if a[i].Path == b[i].Path {
			same++
		}
	}
	if same != len(a) {
		t.Errorf("path IDs differ for renamed loop: %d/%d equal", same, len(a))
	}
}

func TestIntBucketsCollapseNearbyBounds(t *testing.T) {
	if intBucket(500) != intBucket(512) {
		t.Error("500 and 512 should share a bucket")
	}
	if intBucket(4) == intBucket(4096) {
		t.Error("4 and 4096 should not share a bucket")
	}
	if intBucket(-8) == intBucket(8) {
		t.Error("sign must be preserved")
	}
}

func TestForwardShapeAndDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OutDim = 340
	m := NewModel(cfg)
	ctxs := ExtractContexts(loopStmt(t, copySrc), cfg)
	v1, _ := m.Forward(ctxs)
	v2, _ := m.Forward(ctxs)
	if len(v1) != 340 {
		t.Fatalf("code vector dim = %d, want 340 (paper)", len(v1))
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("forward not deterministic")
		}
	}
	nonZero := 0
	for _, x := range v1 {
		if x != 0 {
			nonZero++
		}
	}
	if nonZero < 100 {
		t.Errorf("only %d non-zero features", nonZero)
	}
}

func TestForwardEmptyContexts(t *testing.T) {
	m := NewModel(DefaultConfig())
	v, st := m.Forward(nil)
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty bag should embed to zero vector")
		}
	}
	m.Backward(st, v) // must not panic
}

func TestBackwardGradientCheck(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EmbedDim = 4
	cfg.OutDim = 6
	cfg.TokenVocab = 64
	cfg.PathVocab = 64
	m := NewModel(cfg)
	ctxs := []Context{{Left: 3, Path: 10, Right: 7}, {Left: 7, Path: 11, Right: 3}, {Left: 1, Path: 10, Right: 2}}

	// Loss = 0.5 * |v|^2, so dLoss/dv = v.
	loss := func() float64 {
		v, _ := m.Forward(ctxs)
		s := 0.0
		for _, x := range v {
			s += 0.5 * x * x
		}
		return s
	}
	v, st := m.Forward(ctxs)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Backward(st, v)

	check := func(p [](*[]float64)) {}
	_ = check
	for _, p := range m.Params() {
		// Sample a handful of indices per parameter, including the touched
		// embedding rows.
		idxs := []int{0}
		switch p.Name {
		case "c2v.tok":
			idxs = []int{3 * cfg.EmbedDim, 7*cfg.EmbedDim + 1, 1 * cfg.EmbedDim, 2*cfg.EmbedDim + 2}
		case "c2v.path":
			idxs = []int{10 * cfg.EmbedDim, 11*cfg.EmbedDim + 3}
		case "c2v.W":
			idxs = []int{0, 13, 37, 50}
		case "c2v.b", "c2v.attn":
			idxs = []int{0, 1, 5}
		}
		for _, i := range idxs {
			old := p.W[i]
			const h = 1e-6
			p.W[i] = old + h
			up := loss()
			p.W[i] = old - h
			down := loss()
			p.W[i] = old
			want := (up - down) / (2 * h)
			if math.Abs(p.G[i]-want) > 1e-4 {
				t.Errorf("%s[%d]: grad %g, numeric %g", p.Name, i, p.G[i], want)
			}
		}
	}
}

func TestAttentionFavoursInformativeContext(t *testing.T) {
	// Train the model so that contexts with path 5 dominate the output; the
	// attention weights should shift toward them.
	cfg := DefaultConfig()
	cfg.EmbedDim = 8
	cfg.OutDim = 8
	m := NewModel(cfg)
	ctxs := []Context{{1, 5, 2}, {3, 9, 4}}
	target := make([]float64, cfg.OutDim)
	for i := range target {
		target[i] = 1
	}
	// Gradient steps pulling v toward target while the path-9 embedding is
	// frozen at a random point would shift attention; here we simply check
	// that alpha sums to one and stays positive through updates.
	v, st := m.Forward(ctxs)
	if math.Abs(st.alpha[0]+st.alpha[1]-1) > 1e-9 {
		t.Fatalf("alpha = %v, want sum 1", st.alpha)
	}
	dv := make([]float64, len(v))
	for i := range dv {
		dv[i] = v[i] - target[i]
	}
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	m.Backward(st, dv)
	// Gradients must be finite.
	for _, p := range m.Params() {
		for _, g := range p.G {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				t.Fatal("non-finite gradient")
			}
		}
	}
}

func TestDifferentLoopsEmbedDifferently(t *testing.T) {
	cfg := DefaultConfig()
	m := NewModel(cfg)
	v1, _ := m.Forward(ExtractContexts(loopStmt(t, copySrc), cfg))
	v2, _ := m.Forward(ExtractContexts(loopStmt(t, `
int v[512];
int f() {
    int s = 0;
    for (int i = 0; i < 512; i++) {
        s += v[i] * v[i];
    }
    return s;
}
`), cfg))
	d := 0.0
	for i := range v1 {
		d += (v1[i] - v2[i]) * (v1[i] - v2[i])
	}
	if math.Sqrt(d) < 1e-3 {
		t.Errorf("distinct loops embed almost identically (dist %g)", math.Sqrt(d))
	}
}
